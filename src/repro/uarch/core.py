"""The approximate-cycle out-of-order core engine.

One engine serves both the baseline and the LoopFrog configurations: with
``LoopFrogConfig.enabled == False`` hints are treated as nops (the paper's
backwards-compatibility guarantee) and the machine is a conventional wide
OoO core; with it enabled, ``detach`` spawns speculative threadlets whose
memory traffic flows through the SSB and conflict detector.

Model structure (see DESIGN.md "Timing-model fidelity notes"):

* **Functional execution happens at fetch.**  Each threadlet's register
  state advances as instructions are fetched along its (locally correct)
  path; speculative threadlets read through the SSB's versioning logic, so
  they really do consume stale data when they out-run an older threadlet's
  stores — which the conflict detector later catches and repairs by
  squashing, exactly as in section 4.2.
* **Timing is layered on top**: fetched instructions flow through dispatch
  (ROB/IQ/LSQ allocation, renaming), issue (operand readiness, FU ports,
  cache latencies) and in-order per-threadlet commit.  Branch mispredicts
  stall the fetch of the offending threadlet until the branch resolves,
  charging a variable, data-dependent penalty; other threadlets keep
  fetching (the paper's "cutting control dependencies").
* **Two-level commit**: instructions commit to their threadlet; the oldest
  threadlet is architectural and its commits are the program's. When it
  finishes its epoch, the successor becomes architectural and its SSB slice
  is merged (section 4.1.4).
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ExecutionError, SimulationError
from ..isa.instructions import (
    OPCLASS_ORDER,
    Instruction,
    OpClass,
    Opcode,
)
from ..obs.metrics import COUNTER, GAUGE, HISTOGRAM, MetricSpec, register
from ..obs.tracing import current_tracer
from ..isa.program import Program
from ..isa.registers import initial_register_file
from .branch_pred import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import MachineConfig
from .conflict import ConflictDetector
from .executor import DISPATCH as _EXEC_DISPATCH
from .fastpath import (
    FLAG_BRANCH,
    FLAG_HALT,
    FLAG_HINT,
    FLAG_LOAD,
    FLAG_MEM,
    FLAG_STORE,
    fast_program,
)
from .memory_state import SparseMemory
from .packing import IterationPacker
from .ssb import SpeculativeStateBuffer
from .statistics import SimStats
from .threadlet import Threadlet, ThreadletState

# Version of the engine's *timing semantics*.  The persistent result store
# (repro.results) keys cached simulation results on this value: bump it on
# ANY change that can alter cycle counts or statistics, so stale results
# from older engines are invalidated across sessions.  Pure speedups that
# keep outputs bit-identical (like the hot-path work in this module) must
# NOT bump it — that is what keeps warm re-runs instant across versions.
#
# v2: pending packed-iteration skips are cancelled when an epoch leaves
# its region at SYNC (the fuzz-found cross-region state-divergence fix),
# which changes cycle counts and committed state on affected programs.
ENGINE_SCHEMA_VERSION = 2


# ---------------------------------------------------------------------------
# Engine execution-mode selection.
#
# Engine.step() has three bindings of the same timing semantics:
#
# * ``reference`` — the original per-phase methods, one call per stage per
#   cycle.  Slowest; the ground truth every other mode is compared to.
# * ``fast`` — the optimized serial path (compiled fetch closures, cached
#   slot orders, batched per-cycle stats, idle-cycle skipping).
# * ``epoch-parallel`` — the fast path plus *episode* execution: runs of
#   cycles whose threadlet population is stable are simulated by
#   cross-cycle monolithic loops with epoch-granularity batched hazard
#   and statistics bookkeeping (see _ep_advance below).
#
# All modes must produce bit-identical cycles and statistics — the parity
# suite (tests/test_engine_parity.py) and the bench_compare semantics gate
# enforce this.  The mode is resolved once per Engine at construction:
# the REPRO_ENGINE_MODE environment variable picks a mode by name, the
# legacy REPRO_ENGINE_REFERENCE variable forces the reference path (for
# debugging and the CI parity job), and set_engine_mode() /
# set_engine_reference_mode() override both in-process.
# ---------------------------------------------------------------------------

_REFERENCE_ENV = "REPRO_ENGINE_REFERENCE"
_MODE_ENV = "REPRO_ENGINE_MODE"
ENGINE_MODES = ("reference", "fast", "epoch-parallel")
_mode_override: Optional[str] = None


def set_engine_mode(mode: Optional[str]) -> None:
    """Force an engine mode by name, or clear the override (``None``).

    Overrides both environment variables for engines constructed
    afterwards; existing engines keep their binding.
    """
    global _mode_override
    if mode is not None and mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r} "
            f"(choose from {', '.join(ENGINE_MODES)})"
        )
    _mode_override = mode


def engine_mode() -> str:
    """The mode new engines will bind: reference|fast|epoch-parallel.

    ``epoch-parallel`` is the default: it is bit-identical to the other
    two (gated by the parity matrix) and the fastest.
    """
    if _mode_override is not None:
        return _mode_override
    env = os.environ.get(_MODE_ENV, "")
    if env:
        if env not in ENGINE_MODES:
            raise ValueError(
                f"unknown {_MODE_ENV} value {env!r} "
                f"(choose from {', '.join(ENGINE_MODES)})"
            )
        return env
    if os.environ.get(_REFERENCE_ENV, "") not in ("", "0"):
        return "reference"
    return "epoch-parallel"


def set_engine_reference_mode(enabled: Optional[bool]) -> None:
    """Legacy toggle: force the reference path (True), force the fast
    path (False), or clear the override (None).  Kept because the
    reference/fast split predates named modes; new code should call
    :func:`set_engine_mode`."""
    set_engine_mode(
        None if enabled is None else ("reference" if enabled else "fast")
    )


def engine_reference_mode() -> bool:
    """True when new engines should use the unoptimized reference path."""
    return engine_mode() == "reference"


# Shared default for PipelineInstr.mem_dep_writers: it is only ever
# iterated (dispatch) or replaced wholesale (fetch of a load), never
# mutated in place, so all non-load instructions can share one tuple.
_NO_WRITERS: Tuple["PipelineInstr", ...] = ()

# Sentinel completion cycle for not-yet-issued instructions.  Issue is
# the only place that assigns ready_cycle (always alongside
# ``issued = True``), so ``pi.ready_cycle <= cycle`` alone is the exact
# "issued and complete" test — no separate issued/None guards needed on
# the hot paths.
_NEVER_READY = 1 << 62


class PipelineInstr:
    """One dynamic instruction in flight."""

    __slots__ = (
        "seq", "slot", "pc", "instr", "op_index", "consumers",
        "num_pending", "dispatched", "issued", "ready_cycle", "committed",
        "squashed", "mem_addr", "mem_size", "taken", "mispredicted",
        "dest_is_fp", "mem_dep_writers", "is_load", "is_store",
        "is_halt", "has_dest",
    )

    def __init__(self, seq: int, slot: int, pc: int, instr: Instruction):
        self.seq = seq
        self.slot = slot
        self.pc = pc
        self.instr = instr
        self.consumers: List["PipelineInstr"] = []
        self.num_pending = 0
        self.dispatched = False
        self.issued = False
        # Completion time; _NEVER_READY until issue assigns the real
        # cycle, so "done" is a single integer comparison with no
        # issued/None guards.
        self.ready_cycle: int = _NEVER_READY
        self.committed = False
        self.squashed = False
        self.mem_addr: Optional[int] = None
        self.mem_size = 0
        self.taken = False
        self.mispredicted = False
        self.mem_dep_writers = _NO_WRITERS
        # Commit/dispatch hot-path flags, precomputed per static
        # instruction: one tuple unpack instead of six .instr chases.
        (
            self.op_index, self.dest_is_fp, self.is_load, self.is_store,
            self.is_halt, self.has_dest,
        ) = instr._pi_static

    def done(self, cycle: int) -> bool:
        return self.ready_cycle <= cycle

    def __repr__(self) -> str:
        return f"PI(seq={self.seq}, slot={self.slot}, pc={self.pc}, {self.instr.opcode.value})"


class _SpecMemView:
    """Memory view for a speculative threadlet: reads via SSB versioning,
    writes into the threadlet's slice.  Records access metadata for the
    engine to pick up after ``execute_one`` returns."""

    __slots__ = ("engine", "threadlet")

    def __init__(self, engine: "Engine", threadlet: Threadlet):
        self.engine = engine
        self.threadlet = threadlet

    def load(self, addr: int, size: int) -> int:
        return self.engine._spec_load(self.threadlet, addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.engine._spec_store(self.threadlet, addr, size, value)


class _ArchMemView:
    """Memory view for the architectural threadlet: direct to memory, but
    accesses still update the conflict detector (section 4)."""

    __slots__ = ("engine", "threadlet")

    def __init__(self, engine: "Engine", threadlet: Threadlet):
        self.engine = engine
        self.threadlet = threadlet

    def load(self, addr: int, size: int) -> int:
        return self.engine._arch_load(self.threadlet, addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.engine._arch_store(self.threadlet, addr, size, value)


class WindowResult:
    """Outcome of :meth:`Engine.run_window`: the detailed-warmup prefix is
    split out so callers measure only the post-warmup portion."""

    __slots__ = (
        "stats", "warmup_instructions", "warmup_cycles",
        "measured_instructions", "measured_cycles", "finished",
    )

    def __init__(self, stats: SimStats, warmup_instructions: int,
                 warmup_cycles: int, measured_instructions: int,
                 measured_cycles: int, finished: bool):
        self.stats = stats
        self.warmup_instructions = warmup_instructions
        self.warmup_cycles = warmup_cycles
        self.measured_instructions = measured_instructions
        self.measured_cycles = measured_cycles
        self.finished = finished

    @property
    def cpi(self) -> float:
        if self.measured_instructions == 0:
            return 0.0
        return self.measured_cycles / self.measured_instructions


class Engine:
    """Cycle-driven simulation of one core running one program."""

    def __init__(
        self,
        machine: MachineConfig,
        program: Program,
        memory: Optional[SparseMemory] = None,
        initial_regs: Optional[Dict[str, float]] = None,
        warm_caches: bool = True,
        initial_pc: int = 0,
    ):
        machine.validate()
        self.machine = machine
        self.core = machine.core
        self.lf = machine.loopfrog
        self.program = program
        self._instructions = program.instructions
        self._program_len = len(self._instructions)
        self.memory = memory if memory is not None else SparseMemory()
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(machine.memory, self.stats)
        if warm_caches:
            self._warm_caches()
        self.predictor = FrontEndPredictor(self.core, self.lf.num_threadlets)
        self.ssb = SpeculativeStateBuffer(self.lf, self.memory)
        self.conflicts = ConflictDetector(
            self.lf.granule_bytes,
            self.lf.num_threadlets,
            use_bloom=self.lf.use_bloom_filters,
            bloom_bits=self.lf.bloom_bits,
            bloom_hashes=self.lf.bloom_hashes,
        )
        self.packer = IterationPacker(self.lf)

        self.threadlets = [
            Threadlet(slot, self.core.fetch_queue_size)
            for slot in range(self.lf.num_threadlets)
        ]
        main = self.threadlets[0]
        regs = initial_register_file()
        if initial_regs:
            regs.update(initial_regs)
        main.activate(epoch=0, regs=regs, pc=initial_pc, rename={},
                      region=None, region_label=None)
        main.is_arch = True
        self.order: List[Threadlet] = [main]

        self.cycle = 0
        self.seq = 0
        self.finished = False

        # Shared back-end occupancy.
        self.rob_used = 0
        self.iq_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0

        self.ready: List[Tuple[int, PipelineInstr]] = []   # issueable heap
        self.completions: List[Tuple[int, int, PipelineInstr]] = []
        # Issue-path FU tables indexed by OpClass position (see OPCLASS_ORDER):
        # list indexing avoids enum hashing on every issued instruction.
        self._fu_latency_by_index = [
            self.core.fu_latency.get(cls, 1) for cls in OPCLASS_ORDER
        ]
        self._fu_ports_template = [
            self.core.fu_ports.get(cls, 8) for cls in OPCLASS_ORDER
        ]
        # Cached per-access scratch set by _spec_load/_spec_store.
        self._last_writers: List[PipelineInstr] = []
        self._last_forwarded = False
        self._arch_commit_gate = 0  # conflict-check drain before commit
        # Tracing is resolved once at construction: the per-epoch emit
        # sites test one attribute against None, and the default (tracing
        # disabled) leaves timing and statistics bit-identical.
        self._tracer = current_tracer()

        # Fast-path state (harmless but unused on the reference path).
        self._progress = 0               # per-advance activity counter
        self._exec_out = [0, False]      # handler scratch: [mem_addr, taken]
        self._pcs_active = -1            # batched per-cycle stats: run key
        self._pcs_region: Optional[str] = None
        self._pcs_count = 0              # cycles accumulated under the key
        n_slots = self.lf.num_threadlets
        self._older_cache: List[List[int]] = [[] for _ in range(n_slots)]
        self._younger_cache: List[List[int]] = [[] for _ in range(n_slots)]

        # Epoch-parallel episode accounting (engine attributes, NOT
        # SimStats: statistics must stay bit-identical across modes, so
        # mode-specific bookkeeping lives outside the parity surface).
        self.ep_episodes_single = 0   # single-threadlet episodes run
        self.ep_episodes_multi = 0    # multi-threadlet episodes run
        self.ep_cycles_single = 0     # cycles simulated inside them
        self.ep_cycles_multi = 0

        # Path selection (see set_engine_mode above).  Instance
        # attributes shadow the class methods, so binding the _fast_*
        # variants here swaps the whole step() pipeline without any
        # per-cycle mode tests; the reference engine binds nothing and
        # runs the original methods.  Epoch-parallel engines bind the
        # same per-cycle fast pipeline (episodes bail out to it around
        # irregular events) plus the episode-based _advance;
        # run_window() always observes progress mid-run, so it falls
        # back to the serial fast advance (see _window_advance).
        mode = engine_mode()
        self.engine_mode = mode
        self.reference_mode = mode == "reference"
        if self.reference_mode:
            self._advance = self._reference_advance
            self._window_advance = self._reference_advance
        else:
            self._fast_prog = fast_program(program)
            self._advance = self._fast_advance
            self._window_advance = self._fast_advance
            self.step = self._fast_step
            self._process_completions = self._fast_process_completions
            self._commit = self._fast_commit
            self._issue = self._fast_issue
            self._dispatch = self._fast_dispatch
            self._fetch = self._fast_fetch
            self._per_cycle_stats = self._fast_per_cycle_stats
            self._older_slots = self._cached_older_slots
            self._younger_slots = self._cached_younger_slots
            if mode == "epoch-parallel":
                self._advance = self._ep_advance
        self._order_changed()

    def use_reference_path(self) -> None:
        """Rebind this engine instance onto the reference step pipeline.

        Instrumentation that wraps the per-stage helpers (e.g.
        :class:`~repro.uarch.trace.Tracer` hooking ``_fetch_one`` /
        ``_dispatch_one``) needs the reference path, because the fast
        path inlines those helpers into monolithic loops.  Removing the
        instance-attribute shadows restores the class methods; both
        paths are bit-identical, so results do not change.
        """
        if self.reference_mode:
            return
        self.reference_mode = True
        self.engine_mode = "reference"
        self._advance = self._reference_advance
        self._window_advance = self._reference_advance
        for name in (
            "step", "_process_completions", "_commit", "_issue",
            "_dispatch", "_fetch", "_per_cycle_stats",
            "_older_slots", "_younger_slots",
        ):
            self.__dict__.pop(name, None)

    def _warm_caches(self) -> None:
        """Pre-warm the L2 with the workload's initialised data and the L1I
        with the program text, modelling a benchmark past its warmup phase
        (the paper warms 50M instructions per SimPoint, section 6.1).
        Untouched regions — e.g. the huge sparse spans of miss-bound
        kernels — stay cold and pay full memory latency."""
        line = self.machine.memory.line_size
        for addr in self.memory.written_addresses():
            self.hierarchy.l2.insert(addr // line)
        self._warm_text()

    def _warm_text(self) -> None:
        """Insert the whole program text into L1I+L2 (shared by the
        constructor's whole-working-set warmup and :meth:`apply_warmup`,
        so the two entry points cannot drift)."""
        line = self.machine.memory.line_size
        l1i_insert = self.hierarchy.l1i.insert
        l2_insert = self.hierarchy.l2.insert
        for pc in range(self._program_len):
            text_line = (pc * 4) // line
            l1i_insert(text_line)
            l2_insert(text_line)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 50_000_000) -> SimStats:
        """Simulate until the program halts; returns the statistics."""
        tracer = self._tracer
        if tracer is None:
            self._run_loop(max_cycles)
        else:
            with tracer.span(
                "simulate",
                program=self.program.name,
                loopfrog=self.lf.enabled,
                engine_mode=self.engine_mode,
            ) as span:
                self._run_loop(max_cycles)
                span.attrs["cycles"] = self.cycle
                span.attrs["arch_instructions"] = self.stats.arch_instructions
                if self.engine_mode == "epoch-parallel":
                    # Episode attribution: how the run decomposed into
                    # cross-cycle monolith executions (engine counters,
                    # deliberately outside SimStats — see __init__).
                    span.attrs["ep_episodes_single"] = self.ep_episodes_single
                    span.attrs["ep_episodes_multi"] = self.ep_episodes_multi
                    span.attrs["ep_cycles_single"] = self.ep_cycles_single
                    span.attrs["ep_cycles_multi"] = self.ep_cycles_multi
        self._flush_cycle_stats()
        self.stats.cycles = self.cycle
        return self.stats

    def apply_warmup(self, warmup) -> None:
        """Replay recorded functional history into the timing structures.

        ``warmup`` is a :class:`repro.sampling.fastforward.WarmupState`
        (duck-typed: anything with ``mem_addresses``, ``cond_branches``,
        ``branch_targets``).  Data lines are replayed into L1D+L2 in
        last-touch order, so LRU replacement leaves each set holding its
        most recently used lines — reconstructing the cache contents of a
        continuous run at this point.  Branch targets fill the BTB and
        conditional outcomes train the TAGE tables through the normal
        predict/update path.  The program text is warmed like
        steady-state fetch leaves it.  Windows use this INSTEAD of the
        constructor's ``warm_caches`` whole-working-set warming (which
        models program *entry*, not a mid-program cut).  Must be called
        before the first :meth:`step`.
        """
        line = self.machine.memory.line_size
        for addr in warmup.mem_addresses:
            line_addr = addr // line
            self.hierarchy.l2.insert(line_addr)
            self.hierarchy.l1d.insert(line_addr)
        self._warm_text()
        for pc, target in warmup.branch_targets:
            self.predictor.btb.insert(pc, target)
        tage = self.predictor.tage
        for pc, taken in warmup.cond_branches:
            tage.update(pc, taken, tage.predict(pc, 0), 0)

    def run_window(
        self,
        n_instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int = 50_000_000,
    ) -> WindowResult:
        """Simulate ``warmup_instructions + n_instructions`` *sequential*
        instructions (or until the program halts) and report cycles for
        the post-warmup portion only.

        Progress is counted in sequential-stream instructions —
        ``arch_instructions + spec_committed_instructions`` — because
        successfully speculated loop iterations retire against the
        speculative threadlet, not the architectural one.  That is the
        same stream the fast-forward profiler counts, so window
        boundaries line up with interval boundaries on both baseline and
        LoopFrog machines.

        The exact :meth:`run` path is untouched: sampled windows go
        through this entry point exclusively.  Commit can retire several
        instructions per cycle — and a threadlet merge credits a whole
        speculated slice at once — so boundaries land on the first cycle
        *at or past* each target.  The measurement target is re-anchored
        to the *actual* warm-boundary overshoot (a merge during warmup
        can jump far past the nominal cut), so the measured portion is
        always ~``n_instructions`` long rather than silently empty.
        """
        stats = self.stats
        target_warm = warmup_instructions
        target_total = warmup_instructions + n_instructions
        warm_cycle = 0
        warm_instructions = 0
        warm_pending = warmup_instructions > 0
        progress = 0
        # Serial advance even under epoch-parallel mode: an episode can
        # run arbitrarily far past the window target before returning,
        # while this loop must observe committed progress every advance.
        # This is the mode's documented fallback-to-serial rule — see
        # docs/microarchitecture.md.
        advance = self._window_advance
        while not self.finished:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: window exceeded {max_cycles} "
                    f"cycles (arch pc={self.order[0].pc})"
                )
            advance(max_cycles)
            progress = (
                stats.arch_instructions + stats.spec_committed_instructions
            )
            if warm_pending and progress >= target_warm:
                warm_cycle = self.cycle
                warm_instructions = progress
                warm_pending = False
                target_total = progress + n_instructions
            if not warm_pending and progress >= target_total:
                break
        self._flush_cycle_stats()
        stats.cycles = self.cycle
        return WindowResult(
            stats=stats,
            warmup_instructions=warm_instructions,
            warmup_cycles=warm_cycle,
            measured_instructions=progress - warm_instructions,
            measured_cycles=self.cycle - warm_cycle,
            finished=self.finished,
        )

    def _run_loop(self, max_cycles: int) -> None:
        advance = self._advance
        while not self.finished:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles "
                    f"(arch pc={self.order[0].pc})"
                )
            advance(max_cycles)

    def _reference_advance(self, max_cycles: int) -> None:
        self.step()

    def _fast_advance(self, max_cycles: int) -> None:
        """One step, then skip ahead over provably idle cycles.

        ``_progress`` counts every state-changing pipeline event of the
        step (fetches, dispatches, issues, completions, retires, order
        mutations).  When a step makes no progress, nothing in the engine
        changes cycle-to-cycle except gates that compare against
        ``self.cycle`` — so the machine stays frozen until the earliest
        such gate opens, and the cycles in between can be counted without
        simulating them.  _skip_idle computes that earliest wake event
        conservatively and bails out (no skip) whenever any gate cannot
        be bounded.
        """
        self._progress = 0
        self.step()
        if self._progress == 0 and not self.ready and not self.finished:
            self._skip_idle(max_cycles)

    def _skip_idle(self, max_cycles: int) -> None:
        cycle = self.cycle
        wake: Optional[int] = None
        completions = self.completions
        if completions:
            wake = completions[0][0]
        order = self.order
        # Threadlet-commit gate: the oldest threadlet is drained and only
        # waiting out the conflict-check latency before handing over.
        t0 = order[0]
        if (
            t0.state is ThreadletState.HALTED
            and t0.successor is not None
            and not t0.inflight
            and not t0.fetch_queue
        ):
            gate = t0.halt_cycle + self.lf.conflict_check_latency
            if gate > cycle and (wake is None or gate < wake):
                wake = gate
        running = ThreadletState.RUNNING
        for t in order:
            if t.ssb_stalled:
                return  # per-cycle ssb_stall_cycles accounting must run
            if t.state is running and not t.fetch_done:
                if len(t.fetch_queue) >= t.fetch_queue_size:
                    continue  # drain needs dispatch -> completions cover it
                if t.fetch_stall_branch is not None:
                    continue  # resolution is a completion event
                stall = t.fetch_stall_until
                if stall <= cycle + 1:
                    return  # fetch could act next cycle; cannot skip
                if wake is None or stall < wake:
                    wake = stall
        if wake is None or wake <= cycle + 1:
            return
        if wake > max_cycles:
            wake = max_cycles
            if wake <= cycle + 1:
                return
        # Jump to the cycle before the event; the next step() lands on it.
        self._pcs_count += wake - cycle - 1
        self.cycle = wake - 1

    # ------------------------------------------------------------------
    # Epoch-parallel engine mode (docs/microarchitecture.md)
    # ------------------------------------------------------------------

    def _ep_advance(self, max_cycles: int) -> None:
        """Epoch-parallel advance: one *episode* per call.

        An episode is a maximal run of cycles over which the active
        threadlet population is stable.  Single-threadlet episodes (the
        serial program, or a drained region tail) run through a
        cross-cycle specialization of the single-threadlet cycle that
        keeps all hot engine state in locals for the episode's whole
        lifetime; multi-threadlet episodes simulate the concurrent
        threadlet epochs through the batched fast phases, reconciling
        them in commit order every cycle.  Both are held bit-identical
        to the reference engine by the parity suite; an episode ends
        when the population changes (a detach spawns, an epoch commits
        or is squashed, the program finishes) or the cycle budget runs
        out, and the next call re-dispatches on the new population.
        """
        if len(self.order) == 1:
            self._ep_run_single(max_cycles)
        else:
            self._ep_run_multi(max_cycles)

    def _ep_run_multi(self, max_cycles: int) -> None:
        """Run one multi-threadlet episode (concurrent epochs).

        Cycle-for-cycle this is ``_fast_step`` on the multi-threadlet
        branch plus the idle-skip of ``_fast_advance``, with the phase
        bodies inlined so the engine-level hoists (heaps, widths,
        latencies, stats) happen once per *episode* rather than once
        per phase call per cycle, and the batched issue/dispatch/commit
        totals flush once per episode.  Unlike the single-threadlet
        monolith, engine state stays canonical on ``self`` *between
        phases*: epoch handover, conflict squashes and hint-spawns all
        run through out-of-line helpers (``_threadlet_commit``,
        ``_fast_fetch_threadlet``) that read and mutate the engine
        directly, so occupancy counters are only localized within a
        phase, exactly like the per-cycle fast phases they mirror.  The
        episode ends when the population returns to one (handover,
        squash, program end) or the budget expires.
        """
        stats = self.stats
        completions = self.completions
        ready = self.ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        core = self.core
        commit_width = core.commit_width
        issue_width = core.issue_width
        dispatch_width = core.dispatch_width
        fetch_width = core.fetch_width
        rob_size = core.rob_size
        iq_size = core.iq_size
        lq_size = core.lq_size
        sq_size = core.sq_size
        int_size = core.int_phys_regs
        fp_size = core.fp_phys_regs
        latency = self._fu_latency_by_index
        ports_template = self._fu_ports_template
        lf_enabled = self.lf.enabled
        ssb_read_latency = self.lf.ssb_read_latency
        ssb_write_latency = self.lf.ssb_write_latency
        g = self.lf.granule_bytes
        access_data = self.hierarchy.access_data
        threadlets = self.threadlets
        fetch_threadlet = self._fast_fetch_threadlet
        skip_idle = self._skip_idle
        running = ThreadletState.RUNNING
        halted_state = ThreadletState.HALTED
        start_cycle = self.cycle
        issued_total = 0
        dispatched_total = 0

        while True:
            cycle = self.cycle
            if cycle >= max_cycles:
                break
            cycle += 1
            self.cycle = cycle
            self._progress = 0
            progress = 0
            order = self.order

            # --- completions ---
            if completions and completions[0][0] <= cycle:
                while completions and completions[0][0] <= cycle:
                    _, _, pi = heappop(completions)
                    progress += 1
                    if pi.squashed:
                        continue
                    for consumer in pi.consumers:
                        if consumer.squashed or consumer.issued:
                            continue
                        consumer.num_pending -= 1
                        if consumer.num_pending <= 0 and consumer.dispatched:
                            heappush(ready, (consumer.seq, consumer))

            # --- commit (mirrors _fast_commit) ---
            budget = commit_width
            finished_now = False
            for t in order:
                inflight = t.inflight
                if inflight:
                    is_arch = t.is_arch
                    rob_used = self.rob_used
                    lq_used = self.lq_used
                    sq_used = self.sq_used
                    int_used = self.int_regs_used
                    fp_used = self.fp_regs_used
                    arch_count = 0
                    spec_count = 0
                    halted = False
                    while budget > 0 and inflight:
                        pi = inflight[0]
                        if not (pi.ready_cycle <= cycle):
                            break
                        inflight.popleft()
                        rob_used -= 1
                        if pi.is_load:
                            lq_used -= 1
                        if pi.is_store:
                            sq_used -= 1
                        if pi.has_dest:
                            if pi.dest_is_fp:
                                fp_used -= 1
                            else:
                                int_used -= 1
                        pi.committed = True
                        budget -= 1
                        progress += 1
                        if is_arch:
                            arch_count += 1
                            if pi.is_halt:
                                halted = True
                                break
                        else:
                            spec_count += 1
                    self.rob_used = rob_used
                    self.lq_used = lq_used
                    self.sq_used = sq_used
                    self.int_regs_used = int_used
                    self.fp_regs_used = fp_used
                    t.epoch_committed += arch_count + spec_count
                    if arch_count:
                        stats.arch_instructions += arch_count
                        region = t.stat_region
                        if region is not None:
                            stats.region(region).arch_instructions += arch_count
                    if spec_count:
                        t.committed_while_spec += spec_count
                    if halted:
                        self._finish()
                        finished_now = True
                        break
                if t.faulted and t.is_arch and not t.inflight and t.fetch_done:
                    if issued_total:
                        stats.issued_instructions += issued_total
                    if dispatched_total:
                        stats.dispatched_instructions += dispatched_total
                    raise ExecutionError(
                        f"{self.program.name}: architectural fault: {t.faulted}"
                    )
            if finished_now:
                break

            # --- threadlet commit ---
            # Inlined entry gate: the helper only acts when the oldest
            # threadlet is fully drained and either finished the program
            # or halted its epoch; anything else returns after the same
            # checks.  It may pop/rebind ``order`` (handover) or finish
            # the program (_finish flushes the cycle-stat run), so
            # re-read both afterwards.
            t0 = order[0]
            if not t0.inflight and not t0.fetch_queue and (
                (t0.fetch_done and t0.faulted is None)
                or t0.state is halted_state
            ):
                # No finished check here: like _fast_step, the remaining
                # phases (and this cycle's stats) still run after a
                # program-end _finish; the loop exits at the cycle's end.
                self._threadlet_commit()
                order = self.order

            # --- issue (mirrors _fast_issue) ---
            if ready:
                budget = issue_width
                ports = ports_template[:]
                retry: List[Tuple[int, PipelineInstr]] = []
                issued = 0
                while budget > 0 and ready:
                    seq, pi = heappop(ready)
                    if pi.squashed or pi.issued:
                        continue
                    ci = pi.op_index
                    if ports[ci] <= 0:
                        retry.append((seq, pi))
                        continue
                    ports[ci] -= 1
                    budget -= 1
                    pi.issued = True
                    issued += 1
                    done_at = cycle + latency[ci]
                    if pi.is_load:
                        fill = access_data(pi.mem_addr, cycle, False, pi.pc)
                        if lf_enabled and not threadlets[pi.slot].is_arch:
                            done_at = max(cycle + ssb_read_latency, fill)
                        else:
                            done_at = max(done_at, fill)
                    elif pi.is_store:
                        if lf_enabled and not threadlets[pi.slot].is_arch:
                            done_at = cycle + ssb_write_latency
                        else:
                            access_data(pi.mem_addr, cycle, True, pi.pc)
                            done_at = cycle + 1
                    pi.ready_cycle = done_at
                    heappush(completions, (done_at, seq, pi))
                for item in retry:
                    heappush(ready, item)
                self.iq_used -= issued
                issued_total += issued
                progress += issued

            # --- dispatch (mirrors _fast_dispatch) ---
            if self.rob_used < rob_size and self.iq_used < iq_size:
                budget = dispatch_width
                rob_used = self.rob_used
                iq_used = self.iq_used
                lq_used = self.lq_used
                sq_used = self.sq_used
                int_used = self.int_regs_used
                fp_used = self.fp_regs_used
                dispatched = 0
                for t in order:
                    fetch_queue = t.fetch_queue
                    if not fetch_queue:
                        continue
                    rename = t.rename
                    inflight = t.inflight
                    store_writers = t.store_writers
                    while budget > 0 and fetch_queue:
                        pi = fetch_queue[0]
                        if rob_used >= rob_size or iq_used >= iq_size:
                            budget = 0
                            break
                        is_load = pi.is_load
                        is_store = pi.is_store
                        if is_load and lq_used >= lq_size:
                            break
                        if is_store and sq_used >= sq_size:
                            break
                        instr = pi.instr
                        if pi.has_dest:
                            if pi.dest_is_fp:
                                if fp_used >= fp_size:
                                    budget = 0
                                    break
                                fp_used += 1
                            else:
                                if int_used >= int_size:
                                    budget = 0
                                    break
                                int_used += 1
                        fetch_queue.popleft()
                        rob_used += 1
                        iq_used += 1
                        if is_load:
                            lq_used += 1
                        if is_store:
                            sq_used += 1
                        deps: Optional[List[PipelineInstr]] = None
                        for reg in instr._reads:
                            producer = rename.get(reg)
                            if (
                                producer is not None
                                and not producer.squashed
                                and not (producer.ready_cycle <= cycle)
                            ):
                                if deps is None:
                                    deps = [producer]
                                else:
                                    deps.append(producer)
                        if is_load and (store_writers or pi.mem_dep_writers):
                            seq = pi.seq
                            mem_addr = pi.mem_addr
                            for granule in range(
                                mem_addr // g,
                                (mem_addr + pi.mem_size - 1) // g + 1,
                            ):
                                writer = store_writers.get(granule)
                                if (
                                    writer is not None
                                    and writer.seq < seq
                                    and not writer.squashed
                                    and not (writer.ready_cycle <= cycle)
                                ):
                                    if deps is None:
                                        deps = [writer]
                                    else:
                                        deps.append(writer)
                            for writer in pi.mem_dep_writers:
                                if (
                                    writer is not None
                                    and writer.seq < seq
                                    and not writer.squashed
                                    and not (writer.ready_cycle <= cycle)
                                ):
                                    if deps is None:
                                        deps = [writer]
                                    else:
                                        deps.append(writer)
                        if deps is not None:
                            if len(deps) == 1:
                                unique_deps = deps
                            else:
                                unique_deps = []
                                seen: Set[int] = set()
                                for dep in deps:
                                    if id(dep) not in seen:
                                        seen.add(id(dep))
                                        unique_deps.append(dep)
                            pi.num_pending = len(unique_deps)
                            for dep in unique_deps:
                                dep.consumers.append(pi)
                        for reg in instr._writes:
                            rename[reg] = pi
                        pi.dispatched = True
                        inflight.append(pi)
                        dispatched += 1
                        if pi.num_pending == 0:
                            heappush(ready, (pi.seq, pi))
                        budget -= 1
                    if budget <= 0:
                        break
                self.rob_used = rob_used
                self.iq_used = iq_used
                self.lq_used = lq_used
                self.sq_used = sq_used
                self.int_regs_used = int_used
                self.fp_regs_used = fp_used
                dispatched_total += dispatched
                progress += dispatched

            # --- fetch (mirrors _fast_fetch) ---
            budget = fetch_width
            for t in list(order):
                if budget <= 0:
                    break
                if t.state is not running or t.fetch_done:
                    continue
                if len(t.fetch_queue) >= t.fetch_queue_size:
                    continue
                br = t.fetch_stall_branch
                if br is None:
                    if t.fetch_stall_until > cycle:
                        continue
                elif not br.squashed and not (
                    br.ready_cycle <= cycle
                ):
                    continue
                budget = fetch_threadlet(t, budget)

            # --- per-cycle stats ---
            order = self.order  # hints may have spawned or squashed
            active = len(order)
            region = order[0].stat_region
            if active == self._pcs_active and region == self._pcs_region:
                self._pcs_count += 1
            else:
                if self._pcs_count:
                    self._flush_cycle_stats()
                self._pcs_active = active
                self._pcs_region = region
                self._pcs_count = 1

            if self.finished or active == 1:
                break
            if progress == 0 and self._progress == 0 and not ready:
                skip_idle(max_cycles)
        if issued_total:
            stats.issued_instructions += issued_total
        if dispatched_total:
            stats.dispatched_instructions += dispatched_total
        self.ep_episodes_multi += 1
        self.ep_cycles_multi += self.cycle - start_cycle

    def _ep_run_single(self, max_cycles: int) -> None:
        """Run one single-threadlet episode (cross-cycle monolith).

        Mirrors ``_fast_step_single`` gate-for-gate, but the per-cycle
        prologue/epilogue (attribute hoisting, occupancy-counter loads
        and stores, batched-stat writebacks) runs once per *episode*
        instead of once per cycle: the cycle counter, sequence number,
        occupancy counters, per-cycle-stat run-length state and the
        batched fetch/dispatch/issue totals all live in locals across
        cycles.  This is sound because a lone threadlet's episode
        invariants hold until the population changes: ``order[0]`` has
        ``successor is None`` (successors always live in ``order``), so
        no handover, squash, or restart can rebind the hoisted
        threadlet containers mid-episode, and the out-of-line calls
        that could (hint handling, program finish) get a full state
        writeback first.  The cross-cycle L1I line memo is exact: an
        L1I hit's only side effect is re-stamping the line's LRU entry,
        and while the memo is valid the line is already the
        most-recently-used line in its set (no other fetch touches the
        L1I — prefetchers fill L1D/L2 only), so the skipped re-stamp
        cannot change any replacement decision; data traffic never
        touches L1I state, so no invalidation is needed.
        """
        # --- episode prologue: engine-level hoists -----------------------
        order = self.order
        t = order[0]
        core = self.core
        stats = self.stats
        completions = self.completions
        ready = self.ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        commit_width = core.commit_width
        issue_width = core.issue_width
        dispatch_width = core.dispatch_width
        fetch_width = core.fetch_width
        rob_size = core.rob_size
        iq_size = core.iq_size
        lq_size = core.lq_size
        sq_size = core.sq_size
        int_size = core.int_phys_regs
        fp_size = core.fp_phys_regs
        mispredict_penalty = core.mispredict_penalty
        btb_miss_penalty = core.btb_miss_penalty
        latency = self._fu_latency_by_index
        ports_template = self._fu_ports_template
        lf_enabled = self.lf.enabled
        ssb_read_latency = self.lf.ssb_read_latency
        ssb_write_latency = self.lf.ssb_write_latency
        access_data = self.hierarchy.access_data
        access_instruction = self.hierarchy.access_instruction
        predict_instruction = self.predictor.predict_instruction
        fp = self._fast_prog
        handlers = fp.handlers
        flags = fp.flags
        instructions = self._instructions
        program_len = self._program_len
        line_size = self.machine.memory.line_size
        out = self._exec_out
        running = ThreadletState.RUNNING
        halted_state = ThreadletState.HALTED

        # --- threadlet-level hoists (stable per the episode invariants) --
        slot = t.slot
        regs = t.regs
        fetch_queue = t.fetch_queue
        queue_size = t.fetch_queue_size
        inflight = t.inflight
        rename = t.rename
        store_writers = t.store_writers
        regs_written = t.regs_written
        read_before_write = t.regs_read_before_write
        pcs_tracked = t.pcs_tracked
        is_arch = t.is_arch
        cached_view = t.mem_view
        if cached_view is not None and cached_view[0] is is_arch:
            view = cached_view[1]
        else:
            view = self._view_for(t)
        g = self.lf.granule_bytes

        # --- cross-cycle state: lives in locals until writeback ----------
        start_cycle = cycle = self.cycle
        seq = self.seq
        rob_used = self.rob_used
        iq_used = self.iq_used
        lq_used = self.lq_used
        sq_used = self.sq_used
        int_used = self.int_regs_used
        fp_used = self.fp_regs_used
        pcs_active = self._pcs_active
        pcs_region = self._pcs_region
        pcs_count = self._pcs_count
        epoch_fetched = t.epoch_fetched
        fetched_total = 0
        dispatched_total = 0
        issued_total = 0
        last_line = -1  # cross-cycle L1I line memo (docstring argument)
        last_ready = 0

        while True:
            if cycle >= max_cycles:
                break  # writeback below; _run_loop raises on the budget
            cycle += 1
            progress = 0

            # --- completions ---
            if completions and completions[0][0] <= cycle:
                while completions and completions[0][0] <= cycle:
                    _, _, pi = heappop(completions)
                    progress += 1
                    if pi.squashed:
                        continue
                    for consumer in pi.consumers:
                        if consumer.squashed or consumer.issued:
                            continue
                        consumer.num_pending -= 1
                        if consumer.num_pending <= 0 and consumer.dispatched:
                            heappush(ready, (consumer.seq, consumer))

            # --- commit ---
            if inflight and (pi := inflight[0]).ready_cycle <= cycle:
                budget = commit_width
                arch_count = 0
                spec_count = 0
                halted_prog = False
                while True:
                    inflight.popleft()
                    rob_used -= 1
                    if pi.is_load:
                        lq_used -= 1
                    if pi.is_store:
                        sq_used -= 1
                    if pi.has_dest:
                        if pi.dest_is_fp:
                            fp_used -= 1
                        else:
                            int_used -= 1
                    pi.committed = True
                    budget -= 1
                    progress += 1
                    if is_arch:
                        arch_count += 1
                        if pi.is_halt:
                            halted_prog = True
                            break
                    else:
                        spec_count += 1
                    if budget <= 0 or not inflight:
                        break
                    pi = inflight[0]
                    if not (pi.ready_cycle <= cycle):
                        break
                t.epoch_committed += arch_count + spec_count
                if arch_count:
                    stats.arch_instructions += arch_count
                    region = t.stat_region
                    if region is not None:
                        stats.region(region).arch_instructions += arch_count
                if spec_count:
                    t.committed_while_spec += spec_count
                if halted_prog:
                    # Program HALT committed: like the reference step,
                    # the cycle ends here (no later phases, no per-cycle
                    # stats for this cycle).  Full writeback, then finish.
                    self.cycle = cycle
                    self.seq = seq
                    self.rob_used = rob_used
                    self.iq_used = iq_used
                    self.lq_used = lq_used
                    self.sq_used = sq_used
                    self.int_regs_used = int_used
                    self.fp_regs_used = fp_used
                    self._pcs_active = pcs_active
                    self._pcs_region = pcs_region
                    self._pcs_count = pcs_count
                    t.epoch_fetched = epoch_fetched
                    if fetched_total:
                        stats.fetched_instructions += fetched_total
                    if dispatched_total:
                        stats.dispatched_instructions += dispatched_total
                    if issued_total:
                        stats.issued_instructions += issued_total
                    self._finish()
                    self.ep_episodes_single += 1
                    self.ep_cycles_single += cycle - start_cycle
                    return
            if t.faulted and is_arch and not inflight and t.fetch_done:
                self.cycle = cycle
                self.seq = seq
                self.rob_used = rob_used
                self.iq_used = iq_used
                self.lq_used = lq_used
                self.sq_used = sq_used
                self.int_regs_used = int_used
                self.fp_regs_used = fp_used
                self._pcs_active = pcs_active
                self._pcs_region = pcs_region
                self._pcs_count = pcs_count
                t.epoch_fetched = epoch_fetched
                if fetched_total:
                    stats.fetched_instructions += fetched_total
                if dispatched_total:
                    stats.dispatched_instructions += dispatched_total
                if issued_total:
                    stats.issued_instructions += issued_total
                raise ExecutionError(
                    f"{self.program.name}: architectural fault: {t.faulted}"
                )

            # --- threadlet commit ---
            finishing = False
            if not inflight and not fetch_queue:
                if t.fetch_done and t.faulted is None:
                    # Program end: the reference step runs the remaining
                    # phases this cycle after _finish, so fall through.
                    # _finish flushes the cycle-stat run through the
                    # engine attributes -> full writeback first, then
                    # re-seed the flushed accumulators.
                    self.cycle = cycle
                    self.seq = seq
                    self.rob_used = rob_used
                    self.iq_used = iq_used
                    self.lq_used = lq_used
                    self.sq_used = sq_used
                    self.int_regs_used = int_used
                    self.fp_regs_used = fp_used
                    self._pcs_active = pcs_active
                    self._pcs_region = pcs_region
                    self._pcs_count = pcs_count
                    t.epoch_fetched = epoch_fetched
                    if fetched_total:
                        stats.fetched_instructions += fetched_total
                        fetched_total = 0
                    if dispatched_total:
                        stats.dispatched_instructions += dispatched_total
                        dispatched_total = 0
                    if issued_total:
                        stats.issued_instructions += issued_total
                        issued_total = 0
                    self._finish()
                    pcs_count = 0  # _finish flushed the run
                    finishing = True
                elif t.state is halted_state:
                    # Provably a no-op for a lone threadlet (successor is
                    # None), but mirror the fast path's call: it reads
                    # ``self.cycle`` for the conflict-check gate.
                    self.cycle = cycle
                    self._threadlet_commit()

            # --- issue ---
            if ready:
                budget = issue_width
                ports = ports_template[:]
                retry: List[Tuple[int, PipelineInstr]] = []
                issued = 0
                while budget > 0 and ready:
                    iseq, pi = heappop(ready)
                    if pi.squashed or pi.issued:
                        continue
                    ci = pi.op_index
                    if ports[ci] <= 0:
                        retry.append((iseq, pi))
                        continue
                    ports[ci] -= 1
                    budget -= 1
                    pi.issued = True
                    issued += 1
                    done_at = cycle + latency[ci]
                    # Every live pipeline instr belongs to t here, so
                    # ``threadlets[pi.slot].is_arch`` is the hoisted flag.
                    if pi.is_load:
                        fill = access_data(pi.mem_addr, cycle, False, pi.pc)
                        if lf_enabled and not is_arch:
                            done_at = max(cycle + ssb_read_latency, fill)
                        else:
                            done_at = max(done_at, fill)
                    elif pi.is_store:
                        if lf_enabled and not is_arch:
                            done_at = cycle + ssb_write_latency
                        else:
                            access_data(pi.mem_addr, cycle, True, pi.pc)
                            done_at = cycle + 1
                    pi.ready_cycle = done_at
                    heappush(completions, (done_at, iseq, pi))
                for item in retry:
                    heappush(ready, item)
                iq_used -= issued
                issued_total += issued
                progress += issued

            # --- dispatch ---
            if fetch_queue and rob_used < rob_size and iq_used < iq_size:
                budget = dispatch_width
                dispatched = 0
                while budget > 0 and fetch_queue:
                    pi = fetch_queue[0]
                    if rob_used >= rob_size or iq_used >= iq_size:
                        break
                    is_load = pi.is_load
                    is_store = pi.is_store
                    if is_load and lq_used >= lq_size:
                        break
                    if is_store and sq_used >= sq_size:
                        break
                    instr = pi.instr
                    if pi.has_dest:
                        if pi.dest_is_fp:
                            if fp_used >= fp_size:
                                break
                            fp_used += 1
                        else:
                            if int_used >= int_size:
                                break
                            int_used += 1
                    fetch_queue.popleft()
                    rob_used += 1
                    iq_used += 1
                    if is_load:
                        lq_used += 1
                    if is_store:
                        sq_used += 1
                    deps: Optional[List[PipelineInstr]] = None
                    for reg in instr._reads:
                        producer = rename.get(reg)
                        if (
                            producer is not None
                            and not producer.squashed
                            and not (producer.ready_cycle <= cycle)
                        ):
                            if deps is None:
                                deps = [producer]
                            else:
                                deps.append(producer)
                    if is_load and (store_writers or pi.mem_dep_writers):
                        dseq = pi.seq
                        mem_addr = pi.mem_addr
                        for granule in range(
                            mem_addr // g, (mem_addr + pi.mem_size - 1) // g + 1
                        ):
                            writer = store_writers.get(granule)
                            if (
                                writer is not None
                                and writer.seq < dseq
                                and not writer.squashed
                                and not (writer.ready_cycle <= cycle)
                            ):
                                if deps is None:
                                    deps = [writer]
                                else:
                                    deps.append(writer)
                        for writer in pi.mem_dep_writers:
                            if (
                                writer is not None
                                and writer.seq < dseq
                                and not writer.squashed
                                and not (writer.ready_cycle <= cycle)
                            ):
                                if deps is None:
                                    deps = [writer]
                                else:
                                    deps.append(writer)
                    if deps is not None:
                        if len(deps) == 1:
                            unique_deps = deps
                        else:
                            unique_deps = []
                            seen: Set[int] = set()
                            for dep in deps:
                                if id(dep) not in seen:
                                    seen.add(id(dep))
                                    unique_deps.append(dep)
                        pi.num_pending = len(unique_deps)
                        for dep in unique_deps:
                            dep.consumers.append(pi)
                    for reg in instr._writes:
                        rename[reg] = pi
                    pi.dispatched = True
                    inflight.append(pi)
                    dispatched += 1
                    if pi.num_pending == 0:
                        heappush(ready, (pi.seq, pi))
                    budget -= 1
                dispatched_total += dispatched
                progress += dispatched

            # --- fetch ---
            if t.state is running and not t.fetch_done \
                    and len(fetch_queue) < queue_size:
                br = t.fetch_stall_branch
                if br is None:
                    can_fetch = t.fetch_stall_until <= cycle
                else:
                    can_fetch = br.squashed or (
                        br.ready_cycle <= cycle
                    )
                if can_fetch:
                    budget = fetch_width
                    fetched = 0
                    while budget > 0:
                        if t.fetch_done or t.state is not running:
                            break
                        if len(fetch_queue) >= queue_size:
                            break
                        branch = t.fetch_stall_branch
                        if branch is not None:
                            if branch.squashed:
                                t.fetch_stall_branch = None
                            elif (branch.ready_cycle <= cycle):
                                t.fetch_stall_branch = None
                                t.fetch_stall_until = (
                                    branch.ready_cycle + mispredict_penalty
                                )
                            else:
                                break
                        if t.fetch_stall_until > cycle:
                            break
                        pc = t.pc
                        if not 0 <= pc < program_len:
                            t.faulted = f"pc {pc} out of range"
                            t.fetch_done = True
                            break

                        line = (pc * 4) // line_size
                        if line == last_line:
                            ready_at = last_ready
                        else:
                            ready_at = access_instruction(pc, cycle)
                            last_line = line
                            last_ready = ready_at
                        if ready_at > cycle + 1:
                            t.fetch_stall_until = ready_at
                            break

                        fl = flags[pc]
                        instr = instructions[pc]

                        if fl & FLAG_STORE and not is_arch and lf_enabled:
                            addr = int(regs[instr.srcs[1]]) + int(instr.imm or 0)
                            if not self._ssb_can_accept(t, addr, instr.size):
                                t.ssb_stalled = True
                                self._region_stats(t).ssb_stall_cycles += 1
                                break
                        t.ssb_stalled = False

                        pi = PipelineInstr(seq, slot, pc, instr)
                        seq += 1

                        if pc in pcs_tracked:
                            track = False
                        else:
                            pcs_tracked.add(pc)
                            track = True
                            for reg in instr._reads:
                                if reg not in regs_written:
                                    read_before_write.add(reg)

                        if fl & FLAG_HALT:
                            t.fetch_done = True
                            fetch_queue.append(pi)
                            epoch_fetched += 1
                            fetched += 1
                            budget -= 1
                            continue

                        try:
                            if fl & FLAG_MEM:
                                self._current_pi = pi
                                if fl & FLAG_LOAD:
                                    self._last_writers = []
                                    next_pc = handlers[pc](regs, view, out)
                                    pi.mem_dep_writers = self._last_writers
                                else:
                                    next_pc = handlers[pc](regs, view, out)
                                pi.mem_addr = out[0]
                                pi.mem_size = instr.size
                            else:
                                next_pc = handlers[pc](regs, view, out)
                        except ExecutionError as exc:
                            t.faulted = str(exc)
                            t.fetch_done = True
                            budget -= 1
                            break
                        if track:
                            regs_written.update(instr._writes)

                        taken = False
                        if fl & FLAG_BRANCH:
                            taken = out[1]
                            pi.taken = taken
                            stats.branches += 1
                            correct, target_known = predict_instruction(
                                pc, instr, taken, next_pc, slot
                            )
                            if not correct:
                                stats.branch_mispredicts += 1
                                pi.mispredicted = True
                                t.fetch_stall_branch = pi
                            elif taken and not target_known:
                                stats.btb_misses += 1
                                t.fetch_stall_until = cycle + btb_miss_penalty

                        fetch_queue.append(pi)
                        epoch_fetched += 1
                        fetched += 1
                        t.pc = next_pc

                        if fl & FLAG_HINT:
                            # Hint handling reads cycle/seq/epoch_fetched
                            # through the engine (spawn decisions, packer
                            # training, trace events): sync them first,
                            # then re-read ``order`` — a detach appends a
                            # successor in place.
                            self.cycle = cycle
                            self.seq = seq
                            t.epoch_fetched = epoch_fetched
                            self._handle_hint(t, instr)
                            order = self.order
                        budget -= 1
                        if taken:
                            break  # at most one taken branch per cycle
                    fetched_total += fetched
                    progress += fetched

            # --- per-cycle stats (run-length batched in locals) ---
            active = len(order)
            region = t.stat_region
            if active == pcs_active and region == pcs_region:
                pcs_count += 1
            else:
                if pcs_count:
                    hist = stats.active_threadlet_cycles
                    hist[pcs_active] = hist.get(pcs_active, 0) + pcs_count
                    if pcs_region is not None:
                        stats.region(pcs_region).arch_cycles += pcs_count
                pcs_active = active
                pcs_region = region
                pcs_count = 1

            if finishing:
                break
            if active != 1:
                break  # a detach spawned: the episode is over

            # --- idle skip (single-threadlet _skip_idle, inlined) ---
            if progress == 0 and not ready and not t.ssb_stalled:
                wake = completions[0][0] if completions else None
                can_skip = True
                if t.state is running and not t.fetch_done \
                        and len(fetch_queue) < queue_size \
                        and t.fetch_stall_branch is None:
                    stall = t.fetch_stall_until
                    if stall <= cycle + 1:
                        can_skip = False
                    elif wake is None or stall < wake:
                        wake = stall
                if can_skip and wake is not None and wake > cycle + 1:
                    if wake > max_cycles:
                        wake = max_cycles
                    if wake > cycle + 1:
                        pcs_count += wake - cycle - 1
                        cycle = wake - 1

        # --- episode writeback -------------------------------------------
        self.cycle = cycle
        self.seq = seq
        self.rob_used = rob_used
        self.iq_used = iq_used
        self.lq_used = lq_used
        self.sq_used = sq_used
        self.int_regs_used = int_used
        self.fp_regs_used = fp_used
        self._pcs_active = pcs_active
        self._pcs_region = pcs_region
        self._pcs_count = pcs_count
        t.epoch_fetched = epoch_fetched
        if fetched_total:
            stats.fetched_instructions += fetched_total
        if dispatched_total:
            stats.dispatched_instructions += dispatched_total
        if issued_total:
            stats.issued_instructions += issued_total
        self.ep_episodes_single += 1
        self.ep_cycles_single += cycle - start_cycle

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.cycle += 1
        self._process_completions()
        self._commit()
        if self.finished:
            return
        self._threadlet_commit()
        self._issue()
        self._dispatch()
        self._fetch()
        self._per_cycle_stats()

    # ------------------------------------------------------------------
    # Memory views (functional access at fetch)
    # ------------------------------------------------------------------

    def _older_slots(self, threadlet: Threadlet) -> List[int]:
        idx = self.order.index(threadlet)
        return [t.slot for t in reversed(self.order[:idx])]

    def _younger_slots(self, threadlet: Threadlet) -> List[int]:
        idx = self.order.index(threadlet)
        return [t.slot for t in self.order[idx + 1 :]]

    # Fast-path variants: the per-slot orders are recomputed only when
    # ``order`` mutates (_order_changed below), not on every speculative
    # memory access.  The cached lists are read-only to all consumers
    # (SSB versioned reads, conflict-detector write checks).

    def _cached_older_slots(self, threadlet: Threadlet) -> List[int]:
        return self._older_cache[threadlet.slot]

    def _cached_younger_slots(self, threadlet: Threadlet) -> List[int]:
        return self._younger_cache[threadlet.slot]

    def _order_changed(self) -> None:
        """Rebuild the slot-order caches; called at every ``order``
        mutation site (spawn, squash refresh, threadlet commit, finish).
        Mutating the order is pipeline progress, so this also feeds the
        fast path's idle detector."""
        self._progress += 1
        older = self._older_cache
        younger = self._younger_cache
        order = self.order
        n = len(order)
        for i in range(n):
            slot = order[i].slot
            older[slot] = [order[j].slot for j in range(i - 1, -1, -1)]
            younger[slot] = [order[j].slot for j in range(i + 1, n)]

    def _spec_load(self, t: Threadlet, addr: int, size: int) -> int:
        result = self.ssb.read(addr, size, self._older_slots(t), t.slot)
        self.conflicts.on_speculative_read(t.slot, addr, size)
        self.stats.ssb_reads += 1
        if result.forwarded_from:
            self.stats.ssb_forwards += 1
        self._last_writers = list(result.writers)
        return result.value

    def _spec_store(self, t: Threadlet, addr: int, size: int, value: int) -> None:
        pi_writer = self._current_pi  # the instruction being fetched
        accepted = self.ssb.write(t.slot, addr, size, value, pi_writer)
        if not accepted:
            raise AssertionError("SSB overflow must be pre-checked in fetch")
        self.stats.ssb_writes += 1
        g = self.lf.granule_bytes
        first_granule = addr // g
        last_granule = (addr + size - 1) // g
        # Sub-granule stores read-modify-write the whole granule: the read
        # that fills the unwritten bytes joins the read set and can cause
        # false-sharing conflicts (section 4.1.1).  This is what makes
        # large granules hurt in figure 10.
        if addr % g or size % g:
            end = addr + size
            for granule in range(first_granule, last_granule + 1):
                g_start = granule * g
                if addr > g_start or end < g_start + g:
                    self.conflicts.on_speculative_read(t.slot, g_start, g)
        victim = self.conflicts.on_write(
            t.slot, addr, size, self._younger_slots(t)
        )
        if victim is not None:
            self._squash_restart(self._by_slot(victim), reason="conflict")
        store_writers = t.store_writers
        for granule in range(first_granule, last_granule + 1):
            store_writers[granule] = pi_writer

    def _arch_load(self, t: Threadlet, addr: int, size: int) -> int:
        # Architectural reads come straight from memory; no RD-set update is
        # needed (nothing older can write), see section 4.2.
        return self.memory.load(addr, size)

    def _arch_store(self, t: Threadlet, addr: int, size: int, value: int) -> None:
        self.memory.store(addr, size, value)
        victim = self.conflicts.on_write(
            t.slot, addr, size, self._younger_slots(t)
        )
        if victim is not None:
            self._squash_restart(self._by_slot(victim), reason="conflict")
        g = self.lf.granule_bytes
        pi_writer = self._current_pi
        store_writers = t.store_writers
        for granule in range(addr // g, (addr + size - 1) // g + 1):
            store_writers[granule] = pi_writer

    def _by_slot(self, slot: int) -> Threadlet:
        return self.threadlets[slot]

    # ------------------------------------------------------------------
    # Fetch (functional execution + front-end timing)
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        budget = self.core.fetch_width
        running = ThreadletState.RUNNING
        for t in list(self.order):
            if budget <= 0:
                break
            # Only RUNNING threadlets fetch (HALTED/FREE/faulted ones do not).
            if t.state is not running:
                continue
            budget = self._fetch_threadlet(t, budget)

    def _fetch_threadlet(self, t: Threadlet, budget: int) -> int:
        cycle = self.cycle
        program = self._instructions
        program_len = self._program_len
        hierarchy = self.hierarchy
        running = ThreadletState.RUNNING
        fetch_queue = t.fetch_queue
        queue_size = t.fetch_queue_size
        lf_enabled = self.lf.enabled
        while budget > 0:
            if t.fetch_done or t.state is not running:
                break
            if len(fetch_queue) >= queue_size:
                break
            # Mispredicted-branch gate: wait for resolution + redirect.
            branch = t.fetch_stall_branch
            if branch is not None:
                if branch.squashed:
                    t.fetch_stall_branch = None
                elif branch.done(cycle):
                    t.fetch_stall_branch = None
                    t.fetch_stall_until = (
                        branch.ready_cycle + self.core.mispredict_penalty
                    )
                else:
                    break
            if t.fetch_stall_until > cycle:
                break
            if not 0 <= t.pc < program_len:
                t.faulted = f"pc {t.pc} out of range"
                t.fetch_done = True
                break

            # Instruction cache: a hit (latency 1) does not stall fetch.
            ready = hierarchy.access_instruction(t.pc, cycle)
            if ready > cycle + 1:
                t.fetch_stall_until = ready
                break

            instr = program[t.pc]

            # SSB capacity pre-check for speculative stores: a full slice
            # stalls the threadlet (writes can never be dropped, 4.1.2).
            if instr.is_store and not t.is_arch and lf_enabled:
                addr = int(t.regs[instr.srcs[1]]) + int(instr.imm or 0)
                if not self._ssb_can_accept(t, addr, instr.size):
                    t.ssb_stalled = True
                    self._region_stats(t).ssb_stall_cycles += 1
                    break
            t.ssb_stalled = False

            consumed = self._fetch_one(t, instr)
            budget -= 1
            if not consumed:
                break
            if fetch_queue and fetch_queue[-1].taken:
                break  # at most one taken branch per threadlet per cycle
        return budget

    def _ssb_can_accept(self, t: Threadlet, addr: int, size: int) -> bool:
        budget = self.ssb.victim_capacity - self.ssb._victim_in_use
        sl = self.ssb.slice(t.slot)
        first = addr // sl.line_bytes
        last = (addr + size - 1) // sl.line_bytes
        for line_addr in range(first, last + 1):
            ok, use_victim = sl._can_take_line(line_addr, budget)
            if not ok:
                return False
            if use_victim:
                budget -= 1
        return True

    def _fetch_one(self, t: Threadlet, instr: Instruction) -> bool:
        """Functionally execute and enqueue one instruction for ``t``."""
        cycle = self.cycle
        stats = self.stats
        pi = PipelineInstr(self.seq, t.slot, t.pc, instr)
        self.seq += 1
        self._current_pi = pi
        self._last_writers = []

        t.note_register_reads(instr._reads)

        if instr.opcode is Opcode.HALT:
            t.fetch_done = True
            t.fetch_queue.append(pi)
            t.epoch_fetched += 1
            stats.fetched_instructions += 1
            return True

        view = self._view_for(t)
        try:
            result = _EXEC_DISPATCH[instr.opcode_index](instr, t.regs, view, t.pc)
        except ExecutionError as exc:
            t.faulted = str(exc)
            t.fetch_done = True
            return False
        t.note_register_writes(instr._writes)

        pi.mem_addr = result.mem_addr
        pi.mem_size = result.mem_size
        pi.taken = result.taken
        if instr.is_load:
            pi.mem_dep_writers = self._last_writers

        # Branch prediction accounting.
        if instr.is_branch:
            stats.branches += 1
            correct, target_known = self.predictor.predict_instruction(
                t.pc, instr, result.taken, result.next_pc, t.slot
            )
            if not correct:
                stats.branch_mispredicts += 1
                pi.mispredicted = True
                t.fetch_stall_branch = pi
            elif result.taken and not target_known:
                stats.btb_misses += 1
                t.fetch_stall_until = cycle + self.core.btb_miss_penalty

        t.fetch_queue.append(pi)
        t.epoch_fetched += 1
        stats.fetched_instructions += 1
        t.pc = result.next_pc

        # LoopFrog hint semantics (section 3.1).
        if instr.is_hint:
            self._handle_hint(t, instr)
        return True

    def _view_for(self, t: Threadlet):
        cached = t.mem_view
        if cached is not None and cached[0] is t.is_arch:
            return cached[1]
        view = (_ArchMemView if t.is_arch else _SpecMemView)(self, t)
        t.mem_view = (t.is_arch, view)
        return view

    # ------------------------------------------------------------------
    # Hints: detach / reattach / sync
    # ------------------------------------------------------------------

    def _handle_hint(self, t: Threadlet, instr: Instruction) -> None:
        region = instr.region_index
        op = instr.opcode

        if op is Opcode.DETACH:
            if t.region is None and t.stat_region is None:
                t.stat_region = instr.region
            if t.region is not None:
                return  # already detached: ignore nested regions
            if not self.lf.enabled:
                return
            t.detach_seq += 1
            self._try_spawn(t, region, instr.region)
            return

        if op is Opcode.REATTACH:
            if t.region != region or t.successor is None:
                return  # not detached on this region: plain nop
            if t.skip_reattaches > 0:
                t.skip_reattaches -= 1
                self._region_stats(t).packed_iterations += 1
                return
            self._halt_epoch(t)
            return

        if op is Opcode.SYNC:
            if t.stat_region == instr.region and t.region is None:
                t.stat_region = None
            if t.region == region:
                # Successors were misspeculation: recycle the whole chain.
                self._squash_chain(t, reason="sync")
                t.region = None
                t.region_label = None
                t.stat_region = None
                # Pending packed-iteration skips die with the region: an
                # over-packed epoch that exits the loop early must not
                # carry them into a later region, where they would swallow
                # that region's reattaches and make the spawner re-execute
                # iterations its successor chain also runs (the fuzz-found
                # cross-region state divergence: duplicated RMW iterations
                # are not idempotent).
                if t.skip_reattaches:
                    self.stats.packing_skips_cancelled += t.skip_reattaches
                    t.skip_reattaches = 0
                t.packed_factor = 1
            return

    def _try_spawn(self, t: Threadlet, region: int, region_label: str) -> None:
        if t.successor is not None or self.order[-1] is not t:
            return
        state = self.packer.region(region)
        # Observe each *new* detach exactly once: keyed by (epoch, detach
        # sequence) so squash-restarts do not re-train the predictors but a
        # spawn-starved threadlet flowing into the next iteration does.
        key = (t.epoch, t.detach_seq)
        if key > state.last_observed_key:
            iterations = max(1, state.last_factor)
            state.observe_detach(dict(t.regs), iterations)
            state.last_observed_key = key
            state.last_factor = 1  # until a packed spawn says otherwise

        free = next(
            (x for x in self.threadlets if x.state is ThreadletState.FREE), None
        )
        if free is None:
            return

        decision = state.decide(self.core.rob_size)
        regs = dict(t.regs)
        if decision.factor > 1:
            regs.update(decision.predicted_regs)
            t.skip_reattaches = decision.factor - 1
            t.packed_factor = decision.factor
            self.stats.packing_factor_sum += decision.factor
            self.stats.packing_events += 1
            self.stats.max_packing_factor = max(
                self.stats.max_packing_factor, decision.factor
            )
            self._region_stats(t, region_label).packing_detaches += 1
        else:
            t.packed_factor = 1
        state.last_factor = decision.factor

        free.activate(
            epoch=t.epoch + 1,
            regs=regs,
            pc=region,
            rename=dict(t.rename),
            region=region,
            region_label=region_label,
        )
        free.packed_prediction = dict(decision.predicted_regs)
        free.predecessor = t
        # Duplicate the spawner's RAS so speculative returns predict well.
        self.predictor.ras[free.slot] = self.predictor.ras[t.slot].copy()
        t.successor = free
        t.region = region
        t.region_label = region_label
        self.order.append(free)
        self._order_changed()
        self.stats.threadlets_spawned += 1
        self._region_stats(t, region_label).epochs_spawned += 1
        if self._tracer is not None:
            self._tracer.event(
                "epoch.spawn", cycle=self.cycle, slot=free.slot,
                epoch=free.epoch, region=region_label,
            )

    def _halt_epoch(self, t: Threadlet) -> None:
        t.state = ThreadletState.HALTED
        t.halt_cycle = self.cycle
        if t.region is not None:
            # Train the epoch-size EMA on the per-iteration size, and feed
            # the IV detector the registers this epoch consumed.
            per_iteration = max(1, t.epoch_fetched // max(1, t.packed_factor))
            state = self.packer.region(t.region)
            state.observe_epoch_size(per_iteration)
            state.note_consumed(t.regs_read_before_write)
        if t.packed_factor > 1 and t.successor is not None:
            self._verify_packing(t)
        if t.successor is not None and t.successor.active:
            self._reconcile_successor_regs(t)

    def _reconcile_successor_regs(self, t: Threadlet) -> None:
        """Forward the spawner's final epoch state into dead successor regs.

        The successor's register file is a snapshot taken at the spawn
        point; anything the spawner wrote *later* in its epoch is missing
        from it.  Registers the successor consumed are validated elsewhere
        (packing verification, conflict detection), but a register the
        successor neither read nor wrote would keep its stale snapshot
        value all the way through the final merge — visible when an engine
        is resumed mid-program from a sampling checkpoint and the last
        epoch's scratch registers become the final architectural state.
        Copying values is timing-neutral: dependencies are tracked through
        the rename map, never through the value file.
        """
        s = t.successor
        for reg, actual in t.regs.items():
            if s.start_regs.get(reg) == actual:
                continue
            if reg in s.regs_read_before_write or reg in s.regs_written:
                continue
            s.regs[reg] = actual
            s.start_regs[reg] = actual
            if s.checkpoint is not None:
                s.checkpoint.regs[reg] = actual

    def _verify_packing(self, t: Threadlet) -> None:
        """Check the successor's predicted start state (section 4.3)."""
        s = t.successor
        assert s is not None
        consumed_mismatch = any(
            s.start_regs.get(r) != t.regs.get(r)
            for r in s.regs_read_before_write
            if r in s.start_regs
        )
        if consumed_mismatch:
            assert s.checkpoint is not None
            s.checkpoint.regs = dict(t.regs)
            self.packer.region(t.region).note_misprediction()
            self._squash_restart(s, reason="packing")
            return
        for reg in s.packed_prediction:
            actual = t.regs.get(reg)
            if actual is None or s.start_regs.get(reg) == actual:
                continue
            # Safe update: the stale value has not been consumed.
            if reg not in s.regs_written:
                s.regs[reg] = actual
            s.start_regs[reg] = actual
            if s.checkpoint is not None:
                s.checkpoint.regs[reg] = actual

    # ------------------------------------------------------------------
    # Squashing
    # ------------------------------------------------------------------

    def _squash_chain(self, t: Threadlet, reason: str) -> None:
        """Recycle all successors of ``t`` (no restart): sync semantics."""
        victim = t.successor
        count = 0
        while victim is not None:
            nxt = victim.successor
            self._drop_threadlet(victim, reason)
            victim.recycle()
            count += 1
            victim = nxt
        t.successor = None
        if count:
            self._refresh_order()

    def _squash_restart(self, victim: Threadlet, reason: str) -> None:
        """Squash ``victim`` and everything younger; restart only ``victim``
        (section 4: "only the oldest one is restarted")."""
        if not victim.active:
            return
        chain = victim.successor
        while chain is not None:
            nxt = chain.successor
            self._drop_threadlet(chain, reason)
            chain.recycle()
            chain = nxt
        self._drop_threadlet(victim, reason)
        victim.restart_from_checkpoint()
        victim.successor = None
        self._refresh_order()

    def _drop_threadlet(self, t: Threadlet, reason: str) -> None:
        """Release a threadlet's pipeline and speculative state."""
        if self._tracer is not None:
            self._tracer.event(
                "epoch.squash", cycle=self.cycle, slot=t.slot,
                epoch=t.epoch, reason=reason,
            )
        region = self._region_stats(t)
        if reason != "end":
            self.stats.threadlets_squashed += 1
            region.epochs_squashed += 1
        self.stats.failed_spec_instructions += t.epoch_committed
        if reason == "conflict":
            self.stats.squash_conflicts += 1
            region.squash_conflicts += 1
        elif reason == "sync":
            self.stats.squash_syncs += 1
            region.squash_syncs += 1
        elif reason == "packing":
            self.stats.squash_packing += 1
            region.squash_packing += 1
        elif reason == "overflow":
            self.stats.squash_overflow += 1

        for pi in t.inflight:
            self._release_entry(pi, committed=False)
            pi.squashed = True
        for pi in t.fetch_queue:
            pi.squashed = True
        t.inflight.clear()
        t.fetch_queue.clear()
        self.ssb.squash(t.slot)
        self.conflicts.clear(t.slot)
        t.store_writers.clear()

    def _refresh_order(self) -> None:
        self.order = [t for t in self.order if t.active]
        self._order_changed()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        core = self.core
        budget = core.dispatch_width
        rob_size = core.rob_size
        iq_size = core.iq_size
        lq_size = core.lq_size
        sq_size = core.sq_size
        # Dispatch never mutates ``order``; iterate it directly.
        for t in self.order:
            fetch_queue = t.fetch_queue
            while budget > 0 and fetch_queue:
                pi = fetch_queue[0]
                if self.rob_used >= rob_size:
                    return
                if self.iq_used >= iq_size:
                    return
                if pi.is_load and self.lq_used >= lq_size:
                    break
                if pi.is_store and self.sq_used >= sq_size:
                    break
                if pi.instr.dest is not None:
                    if pi.dest_is_fp:
                        if self.fp_regs_used >= core.fp_phys_regs:
                            return
                    elif self.int_regs_used >= core.int_phys_regs:
                        return
                fetch_queue.popleft()
                self._dispatch_one(t, pi)
                budget -= 1

    def _dispatch_one(self, t: Threadlet, pi: PipelineInstr) -> None:
        self.rob_used += 1
        self.iq_used += 1
        if pi.is_load:
            self.lq_used += 1
        if pi.is_store:
            self.sq_used += 1
        instr = pi.instr
        if instr.dest is not None:
            if pi.dest_is_fp:
                self.fp_regs_used += 1
            else:
                self.int_regs_used += 1

        deps: List[PipelineInstr] = []
        cycle = self.cycle
        rename = t.rename
        for reg in instr._reads:
            producer = rename.get(reg)
            if producer is not None and not producer.squashed and not producer.done(cycle):
                deps.append(producer)
        if pi.is_load:
            # Store->load forwarding: wait for the producing store.  The
            # granule map is updated at fetch, which runs ahead of dispatch,
            # so only stores *older in program order* are real producers.
            g = self.lf.granule_bytes
            seq = pi.seq
            store_writers = t.store_writers
            for granule in range(
                pi.mem_addr // g, (pi.mem_addr + pi.mem_size - 1) // g + 1
            ):
                writer = store_writers.get(granule)
                if (
                    writer is not None
                    and writer.seq < seq
                    and not writer.squashed
                    and not writer.done(cycle)
                ):
                    deps.append(writer)
            for writer in pi.mem_dep_writers:
                if (
                    writer is not None
                    and writer.seq < seq
                    and not writer.squashed
                    and not writer.done(cycle)
                ):
                    deps.append(writer)

        if deps:
            unique_deps = []
            seen: Set[int] = set()
            for d in deps:
                if id(d) not in seen:
                    seen.add(id(d))
                    unique_deps.append(d)
            pi.num_pending = len(unique_deps)
            for d in unique_deps:
                d.consumers.append(pi)

        for reg in instr._writes:
            rename[reg] = pi

        pi.dispatched = True
        t.inflight.append(pi)
        self.stats.dispatched_instructions += 1
        if pi.num_pending == 0:
            heapq.heappush(self.ready, (pi.seq, pi))

    # ------------------------------------------------------------------
    # Issue / completion
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        ready = self.ready
        if not ready:
            return
        budget = self.core.issue_width
        ports = self._fu_ports_template[:]
        retry: List[Tuple[int, PipelineInstr]] = []
        cycle = self.cycle
        heappop = heapq.heappop
        while budget > 0 and ready:
            seq, pi = heappop(ready)
            if pi.squashed or pi.issued:
                continue
            ci = pi.op_index
            if ports[ci] <= 0:
                retry.append((seq, pi))
                continue
            ports[ci] -= 1
            budget -= 1
            self._issue_one(pi, cycle)
        for item in retry:
            heapq.heappush(ready, item)

    def _issue_one(self, pi: PipelineInstr, cycle: int) -> None:
        pi.issued = True
        self.iq_used -= 1
        self.stats.issued_instructions += 1
        done_at = cycle + self._fu_latency_by_index[pi.op_index]

        if pi.is_load:
            fill = self.hierarchy.access_data(
                pi.mem_addr, cycle, is_write=False, pc=pi.pc
            )
            t = self.threadlets[pi.slot]
            if self.lf.enabled and not t.is_arch:
                done_at = max(cycle + self.lf.ssb_read_latency, fill)
            else:
                done_at = max(done_at, fill)
        elif pi.is_store:
            t = self.threadlets[pi.slot]
            if self.lf.enabled and not t.is_arch:
                done_at = cycle + self.lf.ssb_write_latency
            else:
                # Architectural stores go to the L1D write path.
                self.hierarchy.access_data(pi.mem_addr, cycle, is_write=True, pc=pi.pc)
                done_at = cycle + 1

        pi.ready_cycle = done_at
        heapq.heappush(self.completions, (done_at, pi.seq, pi))

    def _process_completions(self) -> None:
        cycle = self.cycle
        completions = self.completions
        ready = self.ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        while completions and completions[0][0] <= cycle:
            _, _, pi = heappop(completions)
            if pi.squashed:
                continue
            for consumer in pi.consumers:
                if consumer.squashed or consumer.issued:
                    continue
                consumer.num_pending -= 1
                if consumer.num_pending <= 0 and consumer.dispatched:
                    heappush(ready, (consumer.seq, consumer))

    # ------------------------------------------------------------------
    # Commit (instruction level and threadlet level)
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        budget = self.core.commit_width
        cycle = self.cycle
        stats = self.stats
        # Safe to iterate directly: order is only mutated on the _finish
        # path, which returns out of the loop immediately.
        for t in self.order:
            inflight = t.inflight
            while budget > 0 and inflight:
                pi = inflight[0]
                if not (pi.ready_cycle <= cycle):
                    break
                inflight.popleft()
                self._release_entry(pi, committed=True)
                t.epoch_committed += 1
                budget -= 1
                if t.is_arch:
                    stats.arch_instructions += 1
                    region = t.stat_region
                    if region is not None:
                        stats.region(region).arch_instructions += 1
                    if pi.instr.opcode is Opcode.HALT:
                        self._finish()
                        return
                else:
                    t.committed_while_spec += 1
            if t.faulted and t.is_arch and not t.inflight and t.fetch_done:
                raise ExecutionError(
                    f"{self.program.name}: architectural fault: {t.faulted}"
                )

    def _release_entry(self, pi: PipelineInstr, committed: bool) -> None:
        self.rob_used -= 1
        if not pi.issued:
            self.iq_used -= 1
        if pi.is_load:
            self.lq_used -= 1
        if pi.is_store:
            self.sq_used -= 1
        if pi.instr.dest is not None:
            if pi.dest_is_fp:
                self.fp_regs_used -= 1
            else:
                self.int_regs_used -= 1
        pi.committed = committed

    def _threadlet_commit(self) -> None:
        """Advance S_arch when the oldest threadlet finishes its epoch."""
        while True:
            t = self.order[0]
            # The threadlet that leaves the parallel region runs to the end
            # of the program; it may commit HALT to itself while still
            # speculative, so detect program end when it drains as arch.
            if (
                t.fetch_done
                and t.faulted is None
                and not t.inflight
                and not t.fetch_queue
            ):
                self._finish()
                return
            if (
                t.state is not ThreadletState.HALTED
                or t.inflight
                or t.fetch_queue
            ):
                return
            # Small delay for in-progress conflict checks (section 4.2).
            if self.cycle < t.halt_cycle + self.lf.conflict_check_latency:
                return
            successor = t.successor
            if successor is None:
                return
            self._region_stats(t).epochs_committed += 1
            self.stats.threadlets_committed += 1
            if self._tracer is not None:
                self._tracer.event(
                    "epoch.commit", cycle=self.cycle, slot=t.slot,
                    epoch=t.epoch,
                )
            # Retire the old architectural threadlet's context.
            self.conflicts.clear(t.slot)
            self.ssb.squash(t.slot)  # slice is empty (arch wrote directly)
            t.recycle()
            self.order.pop(0)
            self._order_changed()
            # The successor becomes architectural: merge its slice (atomic
            # commit, section 4.1.4) and expose its lines to the cache.
            new_arch = self.order[0]
            new_arch.is_arch = True
            self.stats.spec_committed_instructions += new_arch.committed_while_spec
            flushed = self._flush_slice_to_caches(new_arch.slot)
            successor.predecessor = None

    def _flush_slice_to_caches(self, slot: int) -> int:
        sl = self.ssb.slice(slot)
        line_addrs = {
            addr // self.machine.memory.line_size for addr in sl.data
        }
        flushed = self.ssb.commit(slot)
        for line in line_addrs:
            self.hierarchy.l1d.insert(line)
        return flushed

    def _finish(self) -> None:
        self.finished = True
        # Outstanding speculative threadlets die with the program.
        for t in self.order[1:]:
            self._drop_threadlet(t, reason="end")
            t.recycle()
        self.order = self.order[:1]
        self._order_changed()
        self._flush_cycle_stats()

    # ------------------------------------------------------------------
    # Per-cycle statistics
    # ------------------------------------------------------------------

    def _region_stats(self, t: Threadlet, label: Optional[str] = None):
        name = label or t.stat_region or t.region_label or "<none>"
        return self.stats.region(name)

    def _per_cycle_stats(self) -> None:
        # ``order`` holds exactly the active (RUNNING/HALTED) threadlets:
        # spawn appends, and every recycle is followed by a _refresh_order
        # or an order.pop — so its length IS the active count.
        stats = self.stats
        active = len(self.order)
        cycles = stats.active_threadlet_cycles
        cycles[active] = cycles.get(active, 0) + 1
        region = self.order[0].stat_region
        if region is not None:
            stats.region(region).arch_cycles += 1

    def _fast_per_cycle_stats(self) -> None:
        # Batched variant: per-cycle histogram/region increments are
        # run-length encoded on the (active count, region) key and flushed
        # when the key changes, at _finish, and at run()/run_window() end.
        order = self.order
        active = len(order)
        region = order[0].stat_region
        if active == self._pcs_active and region == self._pcs_region:
            self._pcs_count += 1
            return
        if self._pcs_count:
            self._flush_cycle_stats()
        self._pcs_active = active
        self._pcs_region = region
        self._pcs_count = 1

    def _flush_cycle_stats(self) -> None:
        count = self._pcs_count
        if not count:
            return
        stats = self.stats
        active = self._pcs_active
        cycles = stats.active_threadlet_cycles
        cycles[active] = cycles.get(active, 0) + count
        region = self._pcs_region
        if region is not None:
            stats.region(region).arch_cycles += count
        self._pcs_count = 0

    # ------------------------------------------------------------------
    # Fast-path phase variants.  Each mirrors its reference method above
    # gate-for-gate (the parity suite proves bit-identical cycles and
    # stats); the differences are pure mechanics — attribute hoisting,
    # inlined helpers, compiled fetch closures — plus ``_progress``
    # accounting feeding the idle-cycle skipper in _fast_advance.
    # ------------------------------------------------------------------

    def _fast_process_completions(self) -> None:
        completions = self.completions
        cycle = self.cycle
        if not completions or completions[0][0] > cycle:
            return
        ready = self.ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        popped = 0
        while completions and completions[0][0] <= cycle:
            _, _, pi = heappop(completions)
            popped += 1
            if pi.squashed:
                continue
            for consumer in pi.consumers:
                if consumer.squashed or consumer.issued:
                    continue
                consumer.num_pending -= 1
                if consumer.num_pending <= 0 and consumer.dispatched:
                    heappush(ready, (consumer.seq, consumer))
        self._progress += popped

    def _fast_commit(self) -> None:
        budget = self.core.commit_width
        cycle = self.cycle
        stats = self.stats
        committed = 0
        for t in self.order:
            inflight = t.inflight
            if inflight:
                is_arch = t.is_arch
                rob_used = self.rob_used
                lq_used = self.lq_used
                sq_used = self.sq_used
                int_used = self.int_regs_used
                fp_used = self.fp_regs_used
                arch_count = 0
                spec_count = 0
                halted = False
                while budget > 0 and inflight:
                    pi = inflight[0]
                    if not (pi.ready_cycle <= cycle):
                        break
                    inflight.popleft()
                    # Inlined _release_entry(pi, committed=True); pi.issued
                    # is known True here, so the iq_used branch is dead.
                    rob_used -= 1
                    if pi.is_load:
                        lq_used -= 1
                    if pi.is_store:
                        sq_used -= 1
                    if pi.has_dest:
                        if pi.dest_is_fp:
                            fp_used -= 1
                        else:
                            int_used -= 1
                    pi.committed = True
                    budget -= 1
                    committed += 1
                    if is_arch:
                        arch_count += 1
                        if pi.is_halt:
                            halted = True
                            break
                    else:
                        spec_count += 1
                self.rob_used = rob_used
                self.lq_used = lq_used
                self.sq_used = sq_used
                self.int_regs_used = int_used
                self.fp_regs_used = fp_used
                t.epoch_committed += arch_count + spec_count
                if arch_count:
                    stats.arch_instructions += arch_count
                    region = t.stat_region
                    if region is not None:
                        stats.region(region).arch_instructions += arch_count
                if spec_count:
                    t.committed_while_spec += spec_count
                if halted:
                    self._progress += committed
                    self._finish()
                    return
            if t.faulted and t.is_arch and not t.inflight and t.fetch_done:
                raise ExecutionError(
                    f"{self.program.name}: architectural fault: {t.faulted}"
                )
        self._progress += committed

    def _fast_issue(self) -> None:
        ready = self.ready
        if not ready:
            return
        budget = self.core.issue_width
        ports = self._fu_ports_template[:]
        retry: List[Tuple[int, PipelineInstr]] = []
        cycle = self.cycle
        heappop = heapq.heappop
        heappush = heapq.heappush
        completions = self.completions
        latency = self._fu_latency_by_index
        lf_enabled = self.lf.enabled
        access_data = self.hierarchy.access_data
        threadlets = self.threadlets
        ssb_read_latency = self.lf.ssb_read_latency
        ssb_write_latency = self.lf.ssb_write_latency
        issued = 0
        while budget > 0 and ready:
            seq, pi = heappop(ready)
            if pi.squashed or pi.issued:
                continue
            ci = pi.op_index
            if ports[ci] <= 0:
                retry.append((seq, pi))
                continue
            ports[ci] -= 1
            budget -= 1
            # Inlined _issue_one.
            pi.issued = True
            issued += 1
            done_at = cycle + latency[ci]
            if pi.is_load:
                fill = access_data(pi.mem_addr, cycle, False, pi.pc)
                if lf_enabled and not threadlets[pi.slot].is_arch:
                    done_at = max(cycle + ssb_read_latency, fill)
                else:
                    done_at = max(done_at, fill)
            elif pi.is_store:
                if lf_enabled and not threadlets[pi.slot].is_arch:
                    done_at = cycle + ssb_write_latency
                else:
                    access_data(pi.mem_addr, cycle, True, pi.pc)
                    done_at = cycle + 1
            pi.ready_cycle = done_at
            heappush(completions, (done_at, seq, pi))
        for item in retry:
            heappush(ready, item)
        self.iq_used -= issued
        self.stats.issued_instructions += issued
        self._progress += issued

    def _fast_dispatch(self) -> None:
        core = self.core
        rob_size = core.rob_size
        iq_size = core.iq_size
        if self.rob_used >= rob_size or self.iq_used >= iq_size:
            # Shared-resource exhaustion stops dispatch before any state
            # changes (the reference returns on its first queue head).
            return
        budget = core.dispatch_width
        lq_size = core.lq_size
        sq_size = core.sq_size
        int_size = core.int_phys_regs
        fp_size = core.fp_phys_regs
        rob_used = self.rob_used
        iq_used = self.iq_used
        lq_used = self.lq_used
        sq_used = self.sq_used
        int_used = self.int_regs_used
        fp_used = self.fp_regs_used
        cycle = self.cycle
        ready = self.ready
        heappush = heapq.heappush
        g = self.lf.granule_bytes
        dispatched = 0
        for t in self.order:
            fetch_queue = t.fetch_queue
            if not fetch_queue:
                continue
            rename = t.rename
            inflight = t.inflight
            store_writers = t.store_writers
            while budget > 0 and fetch_queue:
                pi = fetch_queue[0]
                # Reference returns (stops dispatch entirely) on shared
                # rob/iq/phys-reg exhaustion and breaks (next threadlet)
                # on lq/sq exhaustion; budget=0 emulates the return.
                if rob_used >= rob_size or iq_used >= iq_size:
                    budget = 0
                    break
                is_load = pi.is_load
                is_store = pi.is_store
                if is_load and lq_used >= lq_size:
                    break
                if is_store and sq_used >= sq_size:
                    break
                instr = pi.instr
                if pi.has_dest:
                    if pi.dest_is_fp:
                        if fp_used >= fp_size:
                            budget = 0
                            break
                        fp_used += 1
                    else:
                        if int_used >= int_size:
                            budget = 0
                            break
                        int_used += 1
                fetch_queue.popleft()
                # Inlined _dispatch_one.
                rob_used += 1
                iq_used += 1
                if is_load:
                    lq_used += 1
                if is_store:
                    sq_used += 1
                deps: Optional[List[PipelineInstr]] = None
                for reg in instr._reads:
                    producer = rename.get(reg)
                    if (
                        producer is not None
                        and not producer.squashed
                        and not (producer.ready_cycle <= cycle)
                    ):
                        if deps is None:
                            deps = [producer]
                        else:
                            deps.append(producer)
                if is_load and (store_writers or pi.mem_dep_writers):
                    seq = pi.seq
                    mem_addr = pi.mem_addr
                    for granule in range(
                        mem_addr // g, (mem_addr + pi.mem_size - 1) // g + 1
                    ):
                        writer = store_writers.get(granule)
                        if (
                            writer is not None
                            and writer.seq < seq
                            and not writer.squashed
                            and not (writer.ready_cycle <= cycle)
                        ):
                            if deps is None:
                                deps = [writer]
                            else:
                                deps.append(writer)
                    for writer in pi.mem_dep_writers:
                        if (
                            writer is not None
                            and writer.seq < seq
                            and not writer.squashed
                            and not (writer.ready_cycle <= cycle)
                        ):
                            if deps is None:
                                deps = [writer]
                            else:
                                deps.append(writer)
                if deps is not None:
                    if len(deps) == 1:
                        unique_deps = deps
                    else:
                        unique_deps = []
                        seen: Set[int] = set()
                        for dep in deps:
                            if id(dep) not in seen:
                                seen.add(id(dep))
                                unique_deps.append(dep)
                    pi.num_pending = len(unique_deps)
                    for dep in unique_deps:
                        dep.consumers.append(pi)
                for reg in instr._writes:
                    rename[reg] = pi
                pi.dispatched = True
                inflight.append(pi)
                dispatched += 1
                if pi.num_pending == 0:
                    heappush(ready, (pi.seq, pi))
                budget -= 1
            if budget <= 0:
                break
        self.rob_used = rob_used
        self.iq_used = iq_used
        self.lq_used = lq_used
        self.sq_used = sq_used
        self.int_regs_used = int_used
        self.fp_regs_used = fp_used
        self.stats.dispatched_instructions += dispatched
        self._progress += dispatched

    def _fast_step(self) -> None:
        """``step()`` binding for fast engines.

        Dispatches to the monolithic single-threadlet step — the
        dominant case on both machine configs (the baseline never
        spawns, and LoopFrog runs spend most cycles outside parallel
        regions) — or to the generic phase sequence when several
        threadlets are active.  Phase order and gates are identical
        either way; the monolith only shares one set of hoisted locals
        across what would otherwise be seven method calls per cycle.
        """
        if len(self.order) == 1:
            self._fast_step_single()
            return
        self.cycle += 1
        self._fast_process_completions()
        self._fast_commit()
        if self.finished:
            return
        self._threadlet_commit()
        self._fast_issue()
        self._fast_dispatch()
        self._fast_fetch()
        self._fast_per_cycle_stats()

    def _fast_step_single(self) -> None:
        """One cycle with exactly one active threadlet.

        Inlines every step phase for ``order == [t]``: the per-phase
        ``order`` iterations collapse to direct accesses, and the rare
        multi-threadlet machinery (epoch handover) falls back to the
        generic ``_threadlet_commit``, which provably cannot mutate
        ``order`` here (a lone threadlet has ``successor is None`` —
        successors always live in ``order``).  Stage-for-stage this is
        the same sequence as :meth:`step`; the parity suite holds it to
        bit-identical cycles and stats.
        """
        cycle = self.cycle + 1
        self.cycle = cycle
        progress = 0
        heappop = heapq.heappop
        heappush = heapq.heappush

        # --- completions ---
        completions = self.completions
        ready = self.ready
        if completions and completions[0][0] <= cycle:
            while completions and completions[0][0] <= cycle:
                _, _, pi = heappop(completions)
                progress += 1
                if pi.squashed:
                    continue
                for consumer in pi.consumers:
                    if consumer.squashed or consumer.issued:
                        continue
                    consumer.num_pending -= 1
                    if consumer.num_pending <= 0 and consumer.dispatched:
                        heappush(ready, (consumer.seq, consumer))

        # --- commit ---
        t = self.order[0]
        stats = self.stats
        inflight = t.inflight
        if inflight and (pi := inflight[0]).ready_cycle <= cycle:
            budget = self.core.commit_width
            is_arch = t.is_arch
            rob_used = self.rob_used
            lq_used = self.lq_used
            sq_used = self.sq_used
            int_used = self.int_regs_used
            fp_used = self.fp_regs_used
            arch_count = 0
            spec_count = 0
            halted = False
            while True:
                inflight.popleft()
                # Inlined _release_entry(pi, committed=True); see
                # _fast_commit for the dead-branch argument.
                rob_used -= 1
                if pi.is_load:
                    lq_used -= 1
                if pi.is_store:
                    sq_used -= 1
                if pi.has_dest:
                    if pi.dest_is_fp:
                        fp_used -= 1
                    else:
                        int_used -= 1
                pi.committed = True
                budget -= 1
                progress += 1
                if is_arch:
                    arch_count += 1
                    if pi.is_halt:
                        halted = True
                        break
                else:
                    spec_count += 1
                if budget <= 0 or not inflight:
                    break
                pi = inflight[0]
                if not (pi.ready_cycle <= cycle):
                    break
            self.rob_used = rob_used
            self.lq_used = lq_used
            self.sq_used = sq_used
            self.int_regs_used = int_used
            self.fp_regs_used = fp_used
            t.epoch_committed += arch_count + spec_count
            if arch_count:
                stats.arch_instructions += arch_count
                region = t.stat_region
                if region is not None:
                    stats.region(region).arch_instructions += arch_count
            if spec_count:
                t.committed_while_spec += spec_count
            if halted:
                self._progress += progress
                self._finish()
                return
        if t.faulted and t.is_arch and not t.inflight and t.fetch_done:
            raise ExecutionError(
                f"{self.program.name}: architectural fault: {t.faulted}"
            )

        # --- threadlet commit ---
        fetch_queue = t.fetch_queue
        if not inflight and not fetch_queue:
            if t.fetch_done and t.faulted is None:
                # Program end: the reference step still runs the
                # remaining phases this cycle after _finish, so fall
                # through rather than returning.
                self._finish()
            elif t.state is ThreadletState.HALTED:
                self._threadlet_commit()

        # --- issue ---
        if ready:
            budget = self.core.issue_width
            ports = self._fu_ports_template[:]
            retry: List[Tuple[int, PipelineInstr]] = []
            latency = self._fu_latency_by_index
            lf_enabled = self.lf.enabled
            access_data = self.hierarchy.access_data
            threadlets = self.threadlets
            ssb_read_latency = self.lf.ssb_read_latency
            ssb_write_latency = self.lf.ssb_write_latency
            issued = 0
            while budget > 0 and ready:
                seq, pi = heappop(ready)
                if pi.squashed or pi.issued:
                    continue
                ci = pi.op_index
                if ports[ci] <= 0:
                    retry.append((seq, pi))
                    continue
                ports[ci] -= 1
                budget -= 1
                pi.issued = True
                issued += 1
                done_at = cycle + latency[ci]
                if pi.is_load:
                    fill = access_data(pi.mem_addr, cycle, False, pi.pc)
                    if lf_enabled and not threadlets[pi.slot].is_arch:
                        done_at = max(cycle + ssb_read_latency, fill)
                    else:
                        done_at = max(done_at, fill)
                elif pi.is_store:
                    if lf_enabled and not threadlets[pi.slot].is_arch:
                        done_at = cycle + ssb_write_latency
                    else:
                        access_data(pi.mem_addr, cycle, True, pi.pc)
                        done_at = cycle + 1
                pi.ready_cycle = done_at
                heappush(completions, (done_at, seq, pi))
            for item in retry:
                heappush(ready, item)
            self.iq_used -= issued
            stats.issued_instructions += issued
            progress += issued

        # --- dispatch ---
        # Pre-gate on shared-resource backpressure: with the ROB or IQ
        # full the loop would break before any state change, so skip the
        # prologue entirely (common under memory stalls).
        if fetch_queue and (rob_used := self.rob_used) < (
            rob_size := (core := self.core).rob_size
        ) and (iq_used := self.iq_used) < (iq_size := core.iq_size):
            budget = core.dispatch_width
            lq_size = core.lq_size
            sq_size = core.sq_size
            int_size = core.int_phys_regs
            fp_size = core.fp_phys_regs
            lq_used = self.lq_used
            sq_used = self.sq_used
            int_used = self.int_regs_used
            fp_used = self.fp_regs_used
            g = self.lf.granule_bytes
            rename = t.rename
            store_writers = t.store_writers
            dispatched = 0
            while budget > 0 and fetch_queue:
                pi = fetch_queue[0]
                if rob_used >= rob_size or iq_used >= iq_size:
                    break
                is_load = pi.is_load
                is_store = pi.is_store
                if is_load and lq_used >= lq_size:
                    break
                if is_store and sq_used >= sq_size:
                    break
                instr = pi.instr
                if pi.has_dest:
                    if pi.dest_is_fp:
                        if fp_used >= fp_size:
                            break
                        fp_used += 1
                    else:
                        if int_used >= int_size:
                            break
                        int_used += 1
                fetch_queue.popleft()
                rob_used += 1
                iq_used += 1
                if is_load:
                    lq_used += 1
                if is_store:
                    sq_used += 1
                deps: Optional[List[PipelineInstr]] = None
                for reg in instr._reads:
                    producer = rename.get(reg)
                    if (
                        producer is not None
                        and not producer.squashed
                        and not (producer.ready_cycle <= cycle)
                    ):
                        if deps is None:
                            deps = [producer]
                        else:
                            deps.append(producer)
                if is_load and (store_writers or pi.mem_dep_writers):
                    seq = pi.seq
                    mem_addr = pi.mem_addr
                    for granule in range(
                        mem_addr // g, (mem_addr + pi.mem_size - 1) // g + 1
                    ):
                        writer = store_writers.get(granule)
                        if (
                            writer is not None
                            and writer.seq < seq
                            and not writer.squashed
                            and not (writer.ready_cycle <= cycle)
                        ):
                            if deps is None:
                                deps = [writer]
                            else:
                                deps.append(writer)
                    for writer in pi.mem_dep_writers:
                        if (
                            writer is not None
                            and writer.seq < seq
                            and not writer.squashed
                            and not (writer.ready_cycle <= cycle)
                        ):
                            if deps is None:
                                deps = [writer]
                            else:
                                deps.append(writer)
                if deps is not None:
                    if len(deps) == 1:
                        unique_deps = deps
                    else:
                        unique_deps = []
                        seen: Set[int] = set()
                        for dep in deps:
                            if id(dep) not in seen:
                                seen.add(id(dep))
                                unique_deps.append(dep)
                    pi.num_pending = len(unique_deps)
                    for dep in unique_deps:
                        dep.consumers.append(pi)
                for reg in instr._writes:
                    rename[reg] = pi
                pi.dispatched = True
                t.inflight.append(pi)
                dispatched += 1
                if pi.num_pending == 0:
                    heappush(ready, (pi.seq, pi))
                budget -= 1
            self.rob_used = rob_used
            self.iq_used = iq_used
            self.lq_used = lq_used
            self.sq_used = sq_used
            self.int_regs_used = int_used
            self.fp_regs_used = fp_used
            stats.dispatched_instructions += dispatched
            progress += dispatched

        # --- fetch ---
        # Pre-gate, mirroring the loop-entry gates of
        # _fast_fetch_threadlet in the same order: calls that cannot
        # fetch and have no state to change (queue full, unresolved
        # branch, icache stall) skip the whole call and its prologue.
        # ~70% of per-threadlet fetch calls bail at one of these gates.
        if t.state is ThreadletState.RUNNING and not t.fetch_done:
            if len(t.fetch_queue) < t.fetch_queue_size:
                br = t.fetch_stall_branch
                if br is None:
                    if t.fetch_stall_until <= cycle:
                        self._fast_fetch_threadlet(t, self.core.fetch_width)
                elif br.squashed or (
                    br.ready_cycle <= cycle
                ):
                    # Resolution clears the stall inside the loop.
                    self._fast_fetch_threadlet(t, self.core.fetch_width)

        # --- per-cycle stats ---
        order = self.order  # a fetch hint may have spawned a successor
        active = len(order)
        region = order[0].stat_region
        if active == self._pcs_active and region == self._pcs_region:
            self._pcs_count += 1
        else:
            if self._pcs_count:
                self._flush_cycle_stats()
            self._pcs_active = active
            self._pcs_region = region
            self._pcs_count = 1
        if progress:
            self._progress += progress

    def _fast_fetch(self) -> None:
        budget = self.core.fetch_width
        running = ThreadletState.RUNNING
        cycle = self.cycle
        # The order snapshot is defensive: a hint-spawned successor joins
        # ``order`` mid-loop but would not have been fetched this cycle
        # by the reference path either (its snapshot was taken before
        # the spawn).
        for t in list(self.order):
            if budget <= 0:
                break
            if t.state is not running or t.fetch_done:
                continue
            # Pre-gate, mirroring the loop-entry gates of
            # _fast_fetch_threadlet in the same order (see
            # _fast_step_single): gated calls have no state to change.
            if len(t.fetch_queue) >= t.fetch_queue_size:
                continue
            br = t.fetch_stall_branch
            if br is None:
                if t.fetch_stall_until > cycle:
                    continue
            elif not br.squashed and not (
                br.ready_cycle <= cycle
            ):
                continue
            budget = self._fast_fetch_threadlet(t, budget)

    def _fast_fetch_threadlet(self, t: Threadlet, budget: int) -> int:
        cycle = self.cycle
        program_len = self._program_len
        access_instruction = self.hierarchy.access_instruction
        running = ThreadletState.RUNNING
        fetch_queue = t.fetch_queue
        queue_size = t.fetch_queue_size
        lf_enabled = self.lf.enabled
        fp = self._fast_prog
        handlers = fp.handlers
        flags = fp.flags
        instructions = self._instructions
        stats = self.stats
        out = self._exec_out
        regs = t.regs
        regs_written = t.regs_written
        read_before_write = t.regs_read_before_write
        pcs_tracked = t.pcs_tracked
        is_arch = t.is_arch
        cached_view = t.mem_view
        if cached_view is not None and cached_view[0] is is_arch:
            view = cached_view[1]
        else:
            view = self._view_for(t)
        slot = t.slot
        # Per-instruction counters batched into locals; written back at
        # loop exit (and flushed before hint handling, which reads
        # ``seq``/``epoch_fetched`` through spawn decisions).
        seq = self.seq
        epoch_fetched = t.epoch_fetched
        fetched = 0
        # Same-cycle same-line L1I memo: consecutive fetches on one line
        # within this call reuse the ready cycle.  Exact: between two such
        # accesses nothing else touches the L1I/L2 (fetch-time memory ops
        # go to the SSB/SparseMemory, data-cache traffic happens at
        # issue), and skipping the redundant LRU stamp bump preserves the
        # relative stamp order that replacement decisions depend on.
        line_size = self.machine.memory.line_size
        last_line = -1
        last_ready = 0
        while budget > 0:
            if t.fetch_done or t.state is not running:
                break
            if len(fetch_queue) >= queue_size:
                break
            branch = t.fetch_stall_branch
            if branch is not None:
                if branch.squashed:
                    t.fetch_stall_branch = None
                elif (branch.ready_cycle <= cycle):
                    t.fetch_stall_branch = None
                    t.fetch_stall_until = (
                        branch.ready_cycle + self.core.mispredict_penalty
                    )
                else:
                    break
            if t.fetch_stall_until > cycle:
                break
            pc = t.pc
            if not 0 <= pc < program_len:
                t.faulted = f"pc {pc} out of range"
                t.fetch_done = True
                break

            line = (pc * 4) // line_size
            if line == last_line:
                ready = last_ready
            else:
                ready = access_instruction(pc, cycle)
                last_line = line
                last_ready = ready
            if ready > cycle + 1:
                t.fetch_stall_until = ready
                break

            fl = flags[pc]
            instr = instructions[pc]

            if fl & FLAG_STORE and not is_arch and lf_enabled:
                addr = int(regs[instr.srcs[1]]) + int(instr.imm or 0)
                if not self._ssb_can_accept(t, addr, instr.size):
                    t.ssb_stalled = True
                    self._region_stats(t).ssb_stall_cycles += 1
                    break
            t.ssb_stalled = False

            # Inlined _fetch_one on compiled handlers.
            pi = PipelineInstr(seq, slot, pc, instr)
            seq += 1

            # First execution of a pc this epoch folds its register sets
            # into the epoch trackers; re-executions are provably no-ops
            # (see Threadlet.pcs_tracked) and skip both updates.
            if pc in pcs_tracked:
                track = False
            else:
                pcs_tracked.add(pc)
                track = True
                for reg in instr._reads:
                    if reg not in regs_written:
                        read_before_write.add(reg)

            if fl & FLAG_HALT:
                t.fetch_done = True
                fetch_queue.append(pi)
                epoch_fetched += 1
                fetched += 1
                budget -= 1
                continue

            try:
                if fl & FLAG_MEM:
                    self._current_pi = pi
                    if fl & FLAG_LOAD:
                        self._last_writers = []
                        next_pc = handlers[pc](regs, view, out)
                        pi.mem_dep_writers = self._last_writers
                    else:
                        next_pc = handlers[pc](regs, view, out)
                    pi.mem_addr = out[0]
                    pi.mem_size = instr.size
                else:
                    next_pc = handlers[pc](regs, view, out)
            except ExecutionError as exc:
                t.faulted = str(exc)
                t.fetch_done = True
                budget -= 1
                break
            if track:
                regs_written.update(instr._writes)

            taken = False
            if fl & FLAG_BRANCH:
                taken = out[1]
                pi.taken = taken
                stats.branches += 1
                correct, target_known = self.predictor.predict_instruction(
                    pc, instr, taken, next_pc, slot
                )
                if not correct:
                    stats.branch_mispredicts += 1
                    pi.mispredicted = True
                    t.fetch_stall_branch = pi
                elif taken and not target_known:
                    stats.btb_misses += 1
                    t.fetch_stall_until = cycle + self.core.btb_miss_penalty

            fetch_queue.append(pi)
            epoch_fetched += 1
            fetched += 1
            t.pc = next_pc

            if fl & FLAG_HINT:
                self.seq = seq
                t.epoch_fetched = epoch_fetched
                self._handle_hint(t, instr)
            budget -= 1
            if taken:
                break  # at most one taken branch per threadlet per cycle
        # ``seq`` advances even on a faulting instruction (matching the
        # reference _fetch_one), so write it back unconditionally.
        self.seq = seq
        if fetched:
            t.epoch_fetched = epoch_fetched
            stats.fetched_instructions += fetched
            self._progress += fetched
        return budget

    # Current PipelineInstr whose functional execution is in progress; used
    # by the memory views to attribute SSB writes to instructions.
    _current_pi: Optional[PipelineInstr] = None


# ---------------------------------------------------------------------------
# Metrics catalog for the core pipeline (SimStats stays the storage; the
# registry is the documented observation schema — see repro.obs.metrics).
# ---------------------------------------------------------------------------

register(
    MetricSpec("uarch.core.cycles", COUNTER, "uarch.core",
               "Simulated cycles to program completion",
               unit="cycles", source="cycles"),
    MetricSpec("uarch.core.arch_instructions", COUNTER, "uarch.core",
               "Instructions committed by the architectural threadlet",
               unit="instructions", source="arch_instructions"),
    MetricSpec("uarch.core.spec_committed_instructions", COUNTER,
               "uarch.core",
               "Instructions committed while speculative whose threadlet "
               "later committed",
               unit="instructions", source="spec_committed_instructions"),
    MetricSpec("uarch.core.failed_spec_instructions", COUNTER, "uarch.core",
               "Instructions committed to threadlets that were squashed",
               unit="instructions", source="failed_spec_instructions"),
    MetricSpec("uarch.core.fetched_instructions", COUNTER, "uarch.core",
               "Instructions fetched (all threadlets, all paths)",
               unit="instructions", source="fetched_instructions"),
    MetricSpec("uarch.core.dispatched_instructions", COUNTER, "uarch.core",
               "Instructions allocated into the shared back end",
               unit="instructions", source="dispatched_instructions"),
    MetricSpec("uarch.core.issued_instructions", COUNTER, "uarch.core",
               "Instructions issued to functional units",
               unit="instructions", source="issued_instructions"),
    MetricSpec("uarch.core.branches", COUNTER, "uarch.core",
               "Conditional and indirect branches fetched",
               unit="instructions", source="branches"),
    MetricSpec("uarch.core.branch_mispredicts", COUNTER, "uarch.core",
               "Direction or target mispredictions",
               unit="instructions", source="branch_mispredicts"),
    MetricSpec("uarch.core.btb_misses", COUNTER, "uarch.core",
               "Taken branches whose target was unknown to the BTB",
               unit="instructions", source="btb_misses"),
    MetricSpec("uarch.core.threadlets_spawned", COUNTER, "uarch.core",
               "Speculative threadlet epochs spawned at detach hints",
               unit="epochs", source="threadlets_spawned"),
    MetricSpec("uarch.core.threadlets_committed", COUNTER, "uarch.core",
               "Epochs that became architectural and merged their slice",
               unit="epochs", source="threadlets_committed"),
    MetricSpec("uarch.core.threadlets_squashed", COUNTER, "uarch.core",
               "Epochs squashed for any reason",
               unit="epochs", source="threadlets_squashed"),
    MetricSpec("uarch.core.active_threadlets", HISTOGRAM, "uarch.core",
               "Cycles with exactly k threadlets active (figure 7)",
               unit="cycles", source="active_threadlet_cycles"),
    MetricSpec("uarch.core.ipc", GAUGE, "uarch.core",
               "Architectural instructions per cycle",
               derive=lambda s: s.ipc),
    MetricSpec("uarch.core.total_committed_ipc", GAUGE, "uarch.core",
               "All commit activity per cycle (arch + spec + failed)",
               derive=lambda s: s.total_committed_ipc),
    MetricSpec("uarch.core.branch_mpki", GAUGE, "uarch.core",
               "Branch mispredictions per 1000 architectural instructions",
               derive=lambda s: s.branch_mpki),
)
