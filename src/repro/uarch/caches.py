"""Cache hierarchy timing model: L1I, L1D, L2, DRAM.

Set-associative caches with LRU replacement, MSHR-limited miss concurrency,
a per-PC stride prefetcher at L1D (degree 2) and a stride + next-line
prefetcher at L2 (degree 8), following table 1.  Only *timing* lives here;
data always comes from the functional memory/SSB models.

Latency accounting is approximate-cycle: an access returns the cycle at
which its data is available, accounting for hit latency, miss latency to the
next level, and MSHR occupancy (a miss that cannot allocate an MSHR is
delayed until one frees up).  In-flight fills are merged: a second miss to a
line already being fetched completes when the first fill arrives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import metrics as _metrics
from .config import MemoryConfig
from .statistics import SimStats


class _CacheLevel:
    """One level of set-associative cache (timing only)."""

    __slots__ = ("name", "assoc", "line", "latency", "num_sets", "sets",
                 "mshrs", "inflight", "_stamp")

    def __init__(self, name: str, size: int, assoc: int, line: int,
                 latency: int, mshrs: int):
        self.name = name
        self.assoc = assoc
        self.line = line
        self.latency = latency
        self.num_sets = max(1, size // (assoc * line))
        # sets[i] maps line-address -> last-use stamp (LRU via min()).
        self.sets: List[Dict[int, int]] = [{} for _ in range(self.num_sets)]
        self.mshrs = mshrs
        self.inflight: Dict[int, int] = {}  # line-addr -> fill-complete cycle
        self._stamp = 0

    def _set_for(self, line_addr: int) -> Dict[int, int]:
        return self.sets[line_addr % self.num_sets]

    def lookup(self, line_addr: int) -> bool:
        # Inlined set selection: this runs once per fetched instruction and
        # once per data access, so the extra call was measurable.
        cache_set = self.sets[line_addr % self.num_sets]
        if line_addr in cache_set:
            self._stamp += 1
            cache_set[line_addr] = self._stamp
            return True
        return False

    def insert(self, line_addr: int) -> None:
        cache_set = self.sets[line_addr % self.num_sets]
        self._stamp += 1
        if line_addr in cache_set:
            cache_set[line_addr] = self._stamp
            return
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line_addr] = self._stamp

    def mshr_ready_cycle(self, cycle: int) -> int:
        """Earliest cycle at which an MSHR is free (may be ``cycle``)."""
        self._expire(cycle)
        if len(self.inflight) < self.mshrs:
            return cycle
        return min(self.inflight.values())

    def _expire(self, cycle: int) -> None:
        if not self.inflight:
            return
        done = [a for a, c in self.inflight.items() if c <= cycle]
        for addr in done:
            del self.inflight[addr]

    def note_fill(self, line_addr: int, complete_cycle: int) -> None:
        self.inflight[line_addr] = complete_cycle
        self.insert(line_addr)


class _StridePrefetcher:
    """Per-PC stride detector issuing ``degree`` prefetches ahead."""

    __slots__ = ("degree", "table")

    def __init__(self, degree: int):
        self.degree = degree
        self.table: Dict[int, Tuple[int, int, int]] = {}  # pc -> (last, stride, conf)

    def observe(self, pc: int, addr: int) -> List[int]:
        last, stride, conf = self.table.get(pc, (addr, 0, 0))
        new_stride = addr - last
        if new_stride == stride and stride != 0:
            conf = min(3, conf + 1)
        else:
            conf = 0
            stride = new_stride
        self.table[pc] = (addr, stride, conf)
        if conf >= 2 and stride != 0:
            return [addr + stride * (i + 1) for i in range(self.degree)]
        return []


class MemoryHierarchy:
    """L1I + L1D + shared L2 + DRAM timing model."""

    def __init__(self, config: MemoryConfig, stats: Optional[SimStats] = None):
        self.config = config
        self.stats = stats if stats is not None else SimStats()
        line = config.line_size
        self.line = line
        self.l1i = _CacheLevel(
            "L1I", config.l1i_size, config.l1i_assoc, line,
            config.l1i_latency, mshrs=16,
        )
        self.l1d = _CacheLevel(
            "L1D", config.l1d_size, config.l1d_assoc, line,
            config.l1d_latency, config.l1d_mshrs,
        )
        self.l2 = _CacheLevel(
            "L2", config.l2_size, config.l2_assoc, line,
            config.l2_latency, config.l2_mshrs,
        )
        self.l1_prefetcher = _StridePrefetcher(config.l1_prefetch_degree)
        self.l2_prefetcher = _StridePrefetcher(config.l2_prefetch_degree)

    # -- data side ------------------------------------------------------------

    def access_data(self, addr: int, cycle: int, is_write: bool, pc: int = 0) -> int:
        """Access the data path; returns the data-ready cycle."""
        line_addr = addr // self.line
        self.stats.l1d_accesses += 1

        for target in self.l1_prefetcher.observe(pc, addr):
            self._prefetch(target // self.line, cycle)

        if self.l1d.lookup(line_addr):
            return cycle + self.l1d.latency
        # Merge with an in-flight fill if present.
        inflight = self.l1d.inflight.get(line_addr)
        if inflight is not None and inflight > cycle:
            return inflight

        self.stats.l1d_misses += 1
        start = self.l1d.mshr_ready_cycle(cycle)
        fill = self._access_l2(line_addr, start + self.l1d.latency)
        self.l1d.note_fill(line_addr, fill)
        return fill

    def _access_l2(self, line_addr: int, cycle: int) -> int:
        self.stats.l2_accesses += 1
        # L2 next-line ("neighbor") prefetch on every access.
        for target in self.l2_prefetcher.observe(0, line_addr):
            self._prefetch_l2(target, cycle)
        if self.l2.lookup(line_addr):
            return cycle + self.l2.latency
        inflight = self.l2.inflight.get(line_addr)
        if inflight is not None and inflight > cycle:
            return inflight
        self.stats.l2_misses += 1
        start = self.l2.mshr_ready_cycle(cycle)
        fill = start + self.l2.latency + self.config.dram_latency
        self.l2.note_fill(line_addr, fill)
        # Neighbor prefetch into L2 on a miss.
        self._prefetch_l2(line_addr + 1, cycle)
        return fill

    def _prefetch(self, line_addr: int, cycle: int) -> None:
        """Non-blocking prefetch into L1D (does not consume result)."""
        if self.l1d.lookup(line_addr) or line_addr in self.l1d.inflight:
            return
        if len(self.l1d.inflight) >= self.l1d.mshrs:
            return  # prefetches are dropped when MSHRs are saturated
        fill = self._access_l2(line_addr, cycle + self.l1d.latency)
        self.l1d.note_fill(line_addr, fill)

    def _prefetch_l2(self, line_addr: int, cycle: int) -> None:
        if self.l2.lookup(line_addr) or line_addr in self.l2.inflight:
            return
        if len(self.l2.inflight) >= self.l2.mshrs:
            return
        fill = cycle + self.l2.latency + self.config.dram_latency
        self.l2.note_fill(line_addr, fill)

    # -- instruction side -------------------------------------------------------

    def access_instruction(self, pc: int, cycle: int) -> int:
        """Fetch path: instruction addresses are pc * 4."""
        line_addr = (pc * 4) // self.line
        if self.l1i.lookup(line_addr):
            return cycle + self.l1i.latency
        inflight = self.l1i.inflight.get(line_addr)
        if inflight is not None and inflight > cycle:
            return inflight
        self.stats.l1i_misses += 1
        fill = self._access_l2(line_addr, cycle + self.l1i.latency)
        self.l1i.note_fill(line_addr, fill)
        return fill


# ---------------------------------------------------------------------------
# Metrics catalog for the cache hierarchy (collected from SimStats; see
# repro.obs.metrics for the registry contract).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("uarch.caches.l1d_accesses", _metrics.COUNTER,
                        "uarch.caches", "L1D lookups (loads and stores)",
                        unit="accesses", source="l1d_accesses"),
    _metrics.MetricSpec("uarch.caches.l1d_misses", _metrics.COUNTER,
                        "uarch.caches", "L1D misses escalated to the L2",
                        unit="accesses", source="l1d_misses"),
    _metrics.MetricSpec("uarch.caches.l1i_misses", _metrics.COUNTER,
                        "uarch.caches", "Instruction-fetch L1I misses",
                        unit="accesses", source="l1i_misses"),
    _metrics.MetricSpec("uarch.caches.l2_accesses", _metrics.COUNTER,
                        "uarch.caches", "Unified L2 lookups",
                        unit="accesses", source="l2_accesses"),
    _metrics.MetricSpec("uarch.caches.l2_misses", _metrics.COUNTER,
                        "uarch.caches", "L2 misses that pay DRAM latency",
                        unit="accesses", source="l2_misses"),
    _metrics.MetricSpec("uarch.caches.l1d_miss_rate", _metrics.GAUGE,
                        "uarch.caches", "L1D misses / L1D accesses",
                        derive=lambda s: s.l1d_miss_rate),
)
