"""Threadlet contexts: lightweight, OS-transparent execution contexts
internal to the core (paper section 3).

A :class:`Threadlet` bundles the per-context state of figure 3: its own
program counter and architectural registers, a fetch queue, a private slice
of the ROB (``inflight``), a rename map, and the checkpoint taken when it
starts an epoch (section 4: "a snapshot of register state, created when a
threadlet starts executing a new epoch").
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set


class ThreadletState(enum.Enum):
    FREE = "free"          # context available for spawning
    RUNNING = "running"    # fetching/executing its epoch
    HALTED = "halted"      # reached its reattach; waiting to commit
    DRAINING = "draining"  # slot flushing its slice after commit


@dataclass(slots=True)
class Checkpoint:
    """Register snapshot for squash-and-restart (section 4)."""

    regs: Dict[str, float]
    pc: int
    rename: Dict[str, object]
    epoch: int
    region: Optional[int]
    region_label: Optional[str]


class Threadlet:
    """One threadlet context.  The engine owns the lifecycle.

    ``__slots__`` because threadlet attributes are on the engine's
    per-cycle hot path (fetch gates, queue peeks, state checks).
    """

    __slots__ = (
        "slot", "fetch_queue_size", "state", "is_arch", "epoch", "regs",
        "pc", "fetch_queue", "fetch_done", "fetch_stall_until",
        "fetch_stall_branch", "ssb_stalled", "mem_view", "inflight",
        "rename", "store_writers", "region", "region_label", "stat_region",
        "successor", "predecessor", "checkpoint", "skip_reattaches",
        "packed_factor", "packed_prediction", "start_regs",
        "regs_read_before_write", "regs_written", "pcs_tracked",
        "epoch_fetched",
        "epoch_committed", "committed_while_spec", "halt_cycle", "faulted",
        "detach_seq",
    )

    def __init__(self, slot: int, fetch_queue_size: int):
        self.slot = slot
        self.fetch_queue_size = fetch_queue_size
        self.state = ThreadletState.FREE
        self.is_arch = False
        self.epoch = 0
        self.regs: Dict[str, float] = {}
        self.pc = 0

        # Front end.
        self.fetch_queue: Deque[object] = deque()
        self.fetch_done = False          # fetched HALT (or faulted)
        self.fetch_stall_until = 0       # cycle gate (icache / BTB bubbles)
        self.fetch_stall_branch: Optional[object] = None  # mispredicted branch
        self.ssb_stalled = False

        # Engine-owned memory-view cache: (is_arch, view) at last fetch.
        self.mem_view = None

        # Back end: this threadlet's logical ROB slice, in program order.
        self.inflight: Deque[object] = deque()
        self.rename: Dict[str, object] = {}
        # Last speculative store per granule, for store->load timing deps.
        self.store_writers: Dict[int, object] = {}

        # LoopFrog state.
        self.region: Optional[int] = None        # detached-on region ID
        self.region_label: Optional[str] = None
        self.stat_region: Optional[str] = None   # for per-loop attribution
        self.successor: Optional["Threadlet"] = None
        self.predecessor: Optional["Threadlet"] = None
        self.checkpoint: Optional[Checkpoint] = None
        self.skip_reattaches = 0                 # iteration packing
        self.packed_factor = 1
        self.packed_prediction: Dict[str, float] = {}  # regs predicted at spawn
        self.start_regs: Dict[str, float] = {}   # epoch-start register values
        self.regs_read_before_write: Set[str] = set()
        self.regs_written: Set[str] = set()
        # pcs whose read/write register sets were already folded into the
        # two sets above this epoch (fast-path gate: re-executing a pc
        # can add nothing new — regs_written only grows within an epoch,
        # so the first execution's adds are a superset of any later one's).
        self.pcs_tracked: Set[int] = set()

        # Bookkeeping.
        self.epoch_fetched = 0
        self.epoch_committed = 0
        self.committed_while_spec = 0
        self.halt_cycle = 0                      # cycle the epoch drained
        self.faulted: Optional[str] = None
        self.detach_seq = 0                      # detaches seen this epoch

    # -- lifecycle -------------------------------------------------------------

    def activate(
        self,
        epoch: int,
        regs: Dict[str, float],
        pc: int,
        rename: Dict[str, object],
        region: Optional[int],
        region_label: Optional[str],
    ) -> None:
        """Begin a new epoch in this context (spawn)."""
        self.state = ThreadletState.RUNNING
        self.is_arch = False
        self.epoch = epoch
        self.regs = dict(regs)
        self.pc = pc
        self.rename = dict(rename)
        self.fetch_queue.clear()
        self.fetch_done = False
        self.fetch_stall_until = 0
        self.fetch_stall_branch = None
        self.ssb_stalled = False
        self.inflight.clear()
        self.store_writers.clear()
        self.region = None
        self.region_label = None
        self.stat_region = region_label
        self.successor = None
        self.skip_reattaches = 0
        self.packed_factor = 1
        self.packed_prediction = {}
        self.start_regs = dict(regs)
        self.regs_read_before_write = set()
        self.regs_written = set()
        self.pcs_tracked = set()
        self.epoch_fetched = 0
        self.epoch_committed = 0
        self.committed_while_spec = 0
        self.faulted = None
        self.detach_seq = 0
        self.checkpoint = Checkpoint(
            regs=dict(regs), pc=pc, rename=dict(rename),
            epoch=epoch, region=region, region_label=region_label,
        )

    def restart_from_checkpoint(self) -> None:
        """Squash-and-restart: reload the epoch-start snapshot."""
        cp = self.checkpoint
        assert cp is not None
        self.state = ThreadletState.RUNNING
        self.regs = dict(cp.regs)
        self.pc = cp.pc
        self.rename = dict(cp.rename)
        self.fetch_queue.clear()
        self.fetch_done = False
        self.fetch_stall_until = 0
        self.fetch_stall_branch = None
        self.ssb_stalled = False
        self.inflight.clear()
        self.store_writers.clear()
        self.region = None
        self.region_label = None
        self.stat_region = cp.region_label
        self.successor = None
        self.skip_reattaches = 0
        self.packed_factor = 1
        self.packed_prediction = {}
        self.start_regs = dict(cp.regs)
        self.regs_read_before_write = set()
        self.regs_written = set()
        self.pcs_tracked = set()
        self.epoch_fetched = 0
        self.epoch_committed = 0
        self.committed_while_spec = 0
        self.faulted = None
        self.detach_seq = 0

    def recycle(self) -> None:
        """Free the context entirely (sync squash or threadlet commit)."""
        self.state = ThreadletState.FREE
        self.is_arch = False
        self.fetch_queue.clear()
        self.inflight.clear()
        self.rename = {}
        self.store_writers.clear()
        self.region = None
        self.region_label = None
        self.stat_region = None
        self.successor = None
        self.predecessor = None
        self.checkpoint = None
        self.packed_prediction = {}
        self.faulted = None
        self.fetch_done = False
        self.ssb_stalled = False

    # -- register tracking -------------------------------------------------------

    def note_register_reads(self, regs) -> None:
        for r in regs:
            if r not in self.regs_written:
                self.regs_read_before_write.add(r)

    def note_register_writes(self, regs) -> None:
        self.regs_written.update(regs)

    @property
    def active(self) -> bool:
        return self.state in (ThreadletState.RUNNING, ThreadletState.HALTED)

    def __repr__(self) -> str:
        return (
            f"Threadlet(slot={self.slot}, epoch={self.epoch}, "
            f"state={self.state.value}, arch={self.is_arch}, pc={self.pc})"
        )
