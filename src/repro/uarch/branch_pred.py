"""Branch prediction: a TAGE-style predictor with loop predictor, BTB, RAS.

This follows the structure of the paper's 256-Kbit LTAGE configuration
(table 1) at reduced scale: a bimodal base predictor plus N tagged tables
indexed by geometrically increasing global-history lengths, a dedicated
loop-termination predictor, a branch target buffer and a return-address
stack.  Tables are shared between threadlet contexts while each context
keeps its own global history, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.instructions import Instruction, Opcode
from .config import CoreConfig


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self, tag: int):
        self.tag = tag
        self.counter = 0  # -4..3 signed; >= 0 predicts taken
        self.useful = 0


@dataclass(slots=True)
class Prediction:
    """Outcome of a lookup: predicted direction + metadata for update."""

    taken: bool
    provider: int  # -1 = bimodal, -2 = loop predictor, else table index
    from_loop_predictor: bool = False


class _LoopEntry:
    __slots__ = ("trip", "count", "confidence")

    def __init__(self):
        self.trip = -1        # learned trip count
        self.count = 0        # current iteration counter
        self.confidence = 0   # 0..3; predict only when saturated


class TagePredictor:
    """Shared-table TAGE with per-context global history."""

    def __init__(self, config: CoreConfig, num_contexts: int = 1):
        self.config = config
        self.num_tables = config.bp_num_tables
        self.history_lengths = list(config.bp_history_lengths[: self.num_tables])
        self.table_size = 1 << config.bp_table_bits
        self.tables: List[Dict[int, _TaggedEntry]] = [
            {} for _ in range(self.num_tables)
        ]
        self.bimodal: Dict[int, int] = {}  # pc -> 2-bit counter (0..3)
        self.histories: List[int] = [0] * num_contexts
        self.loop_table: Dict[int, _LoopEntry] = {}
        self.loop_capacity = config.loop_predictor_entries

    # -- indexing -------------------------------------------------------------

    def _index(self, pc: int, history: int, table: int) -> int:
        h = history & ((1 << self.history_lengths[table]) - 1)
        # Fold the history into the index width.
        folded = 0
        while h:
            folded ^= h & (self.table_size - 1)
            h >>= self.config.bp_table_bits
        return (pc ^ folded ^ (table * 0x9E37)) & (self.table_size - 1)

    def _tag(self, pc: int, history: int, table: int) -> int:
        return (pc * 0x85EB ^ history ^ table) & 0xFFF

    # -- prediction -----------------------------------------------------------

    def predict(self, pc: int, context: int = 0) -> Prediction:
        # Loop predictor overrides when confident.
        loop = self.loop_table.get(pc)
        if loop is not None and loop.confidence >= 3 and loop.trip >= 0:
            taken = loop.count + 1 < loop.trip
            return Prediction(taken=taken, provider=-2, from_loop_predictor=True)

        history = self.histories[context]
        for table in range(self.num_tables - 1, -1, -1):
            idx = self._index(pc, history, table)
            entry = self.tables[table].get(idx)
            if entry is not None and entry.tag == self._tag(pc, history, table):
                return Prediction(taken=entry.counter >= 0, provider=table)
        counter = self.bimodal.get(pc, 2)
        return Prediction(taken=counter >= 2, provider=-1)

    # -- update ---------------------------------------------------------------

    def update(
        self, pc: int, taken: bool, prediction: Prediction, context: int = 0
    ) -> None:
        history = self.histories[context]
        correct = prediction.taken == taken

        # Loop predictor training: count consecutive taken, learn the trip.
        loop = self.loop_table.get(pc)
        if loop is None and len(self.loop_table) < self.loop_capacity:
            loop = self.loop_table[pc] = _LoopEntry()
        if loop is not None:
            if taken:
                loop.count += 1
            else:
                trip = loop.count + 1
                if loop.trip == trip:
                    loop.confidence = min(3, loop.confidence + 1)
                else:
                    loop.trip = trip
                    loop.confidence = 0
                loop.count = 0

        if prediction.provider == -1:
            counter = self.bimodal.get(pc, 2)
            counter = min(3, counter + 1) if taken else max(0, counter - 1)
            self.bimodal[pc] = counter
        elif prediction.provider >= 0:
            table = prediction.provider
            idx = self._index(pc, history, table)
            entry = self.tables[table].get(idx)
            if entry is not None:
                entry.counter = (
                    min(3, entry.counter + 1) if taken else max(-4, entry.counter - 1)
                )
                entry.useful = min(3, entry.useful + 1) if correct else max(
                    0, entry.useful - 1
                )

        # Allocate a longer-history entry on a mispredict (TAGE allocation).
        if not correct and not prediction.from_loop_predictor:
            start = prediction.provider + 1 if prediction.provider >= 0 else 0
            for table in range(start, self.num_tables):
                idx = self._index(pc, history, table)
                existing = self.tables[table].get(idx)
                if existing is None or existing.useful == 0:
                    entry = _TaggedEntry(self._tag(pc, history, table))
                    entry.counter = 0 if taken else -1
                    self.tables[table][idx] = entry
                    break

        # Per-context global history (shared tables, private history).
        self.histories[context] = ((history << 1) | int(taken)) & (1 << 256) - 1


class BranchTargetBuffer:
    """Direct-mapped BTB storing the last target per branch PC."""

    def __init__(self, entries: int):
        self.entries = entries
        self.table: Dict[int, int] = {}

    def lookup(self, pc: int) -> Optional[int]:
        slot = pc % self.entries
        cached = self.table.get(slot)
        if cached is None:
            return None
        tag, target = cached
        return target if tag == pc else None

    def insert(self, pc: int, target: int) -> None:
        self.table[pc % self.entries] = (pc, target)


class ReturnAddressStack:
    """Bounded RAS with wrap-around overwrite (like real hardware)."""

    def __init__(self, entries: int):
        self.entries = entries
        self.stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self.stack.append(return_pc)
        if len(self.stack) > self.entries:
            self.stack.pop(0)

    def pop(self) -> Optional[int]:
        if self.stack:
            return self.stack.pop()
        return None

    def copy(self) -> "ReturnAddressStack":
        dup = ReturnAddressStack(self.entries)
        dup.stack = list(self.stack)
        return dup


class FrontEndPredictor:
    """Bundles TAGE + BTB + RAS for the fetch stage.

    ``predict_instruction`` is called with the actual (oracle) outcome so the
    fetch model can account misprediction bubbles without simulating the
    wrong path; it returns whether the prediction was correct and whether the
    BTB provided the target.
    """

    def __init__(self, config: CoreConfig, num_contexts: int = 1):
        self.tage = TagePredictor(config, num_contexts)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = [ReturnAddressStack(config.ras_entries) for _ in range(num_contexts)]

    def predict_instruction(
        self,
        pc: int,
        instr: Instruction,
        actual_taken: bool,
        actual_target: int,
        context: int = 0,
    ):
        """Returns (direction_correct, target_known)."""
        op = instr.opcode
        if op is Opcode.JMP:
            known = self._check_target(pc, actual_target)
            return True, known
        if op is Opcode.CALL:
            self.ras[context].push(pc + 1)
            known = self._check_target(pc, actual_target)
            return True, known
        if op is Opcode.RET:
            predicted = self.ras[context].pop()
            return True, predicted == actual_target
        if instr.is_conditional_branch:
            prediction = self.tage.predict(pc, context)
            self.tage.update(pc, actual_taken, prediction, context)
            correct = prediction.taken == actual_taken
            if actual_taken:
                known = self._check_target(pc, actual_target)
            else:
                known = True
            return correct, known
        return True, True

    def _check_target(self, pc: int, target: int) -> bool:
        known = self.btb.lookup(pc) == target
        self.btb.insert(pc, target)
        return known
