"""Conflict detection between threadlets (paper section 4.2, algorithm 1).

The detector keeps per-threadlet read and write sets at *granule*
granularity.  A speculative read adds the granules it did **not** forward
from the threadlet's own write set to the read set.  Every write checks all
younger threadlets in age order: if the forwarded set intersects a younger
read set, that threadlet observed a stale value and must be squashed;
otherwise the younger threadlet's write set is subtracted from the
forwarded set before moving on (an intervening write re-sources those
granules).

Exact sets are the default — the paper likewise idealises its Bloom
filters.  A Bloom-filter implementation with the hardware's
no-false-negative guarantee is provided for the configuration study.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..obs import metrics as _metrics


class GranuleSet:
    """Exact set of granule IDs (the reference implementation)."""

    __slots__ = ("_set",)

    def __init__(self):
        self._set: Set[int] = set()

    def add_many(self, granules: Iterable[int]) -> None:
        self._set.update(granules)

    def intersects(self, granules: Iterable[int]) -> bool:
        s = self._set
        return any(g in s for g in granules)

    def contains(self, granule: int) -> bool:
        return granule in self._set

    def clear(self) -> None:
        self._set.clear()

    def __len__(self) -> int:
        return len(self._set)

    def __iter__(self):
        return iter(self._set)


class BloomGranuleSet:
    """Bloom-filter granule set: possible false positives, never false
    negatives — safe for conflict detection (section 4.2)."""

    def __init__(self, bits: int = 4096, hashes: int = 4):
        self.bits = bits
        self.hashes = hashes
        self._words = bytearray(bits // 8)
        self._count = 0

    def _positions(self, granule: int) -> List[int]:
        positions = []
        h = granule & 0xFFFFFFFFFFFFFFFF
        for i in range(self.hashes):
            h = (h * 0x9E3779B97F4A7C15 + 0x7F4A7C15 + i) & 0xFFFFFFFFFFFFFFFF
            positions.append((h >> 17) % self.bits)
        return positions

    def add_many(self, granules: Iterable[int]) -> None:
        for g in granules:
            for pos in self._positions(g):
                self._words[pos >> 3] |= 1 << (pos & 7)
            self._count += 1

    def contains(self, granule: int) -> bool:
        return all(
            self._words[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(granule)
        )

    def intersects(self, granules: Iterable[int]) -> bool:
        return any(self.contains(g) for g in granules)

    def clear(self) -> None:
        self._words = bytearray(self.bits // 8)
        self._count = 0

    def __len__(self) -> int:
        return self._count


class ConflictDetector:
    """Algorithm 1, parameterised by granule size and set implementation."""

    def __init__(self, granule_bytes: int, num_slots: int,
                 use_bloom: bool = False, bloom_bits: int = 4096,
                 bloom_hashes: int = 4):
        self.granule_bytes = granule_bytes
        self.use_bloom = use_bloom

        def make_set():
            if use_bloom:
                return BloomGranuleSet(bloom_bits, bloom_hashes)
            return GranuleSet()

        self.rd: Dict[int, object] = {slot: make_set() for slot in range(num_slots)}
        self.wr: Dict[int, object] = {slot: make_set() for slot in range(num_slots)}

    def granules(self, addr: int, size: int) -> List[int]:
        g = self.granule_bytes
        return list(range(addr // g, (addr + size - 1) // g + 1))

    def on_speculative_read(self, slot: int, addr: int, size: int) -> None:
        """Algorithm 1, SPECULATIVEREAD: record forwarded granules only."""
        wr = self.wr[slot]
        forwarded = [g for g in self.granules(addr, size) if not wr.contains(g)]
        self.rd[slot].add_many(forwarded)

    def on_write(
        self, slot: int, addr: int, size: int, younger_slots: List[int]
    ) -> Optional[int]:
        """Algorithm 1, WRITE: update the write set, then walk younger
        threadlets oldest-to-youngest looking for a stale read.

        Returns the slot of the first conflicting younger threadlet (the
        caller squashes it and recycles everything younger), or None.
        """
        granules = self.granules(addr, size)
        self.wr[slot].add_many(granules)

        fwd = granules
        for t in younger_slots:
            if self.rd[t].intersects(fwd):
                return t  # t observed a stale value
            wr_t = self.wr[t]
            fwd = [g for g in fwd if not wr_t.contains(g)]
            if not fwd:
                break
        return None

    def clear(self, slot: int) -> None:
        self.rd[slot].clear()
        self.wr[slot].clear()

    def read_set_size(self, slot: int) -> int:
        return len(self.rd[slot])

    def write_set_size(self, slot: int) -> int:
        return len(self.wr[slot])

    def write_set_intersects(self, slot: int, addr: int, size: int) -> bool:
        """Used by the coherence model: does a remote access hit our sets?"""
        return self.wr[slot].intersects(self.granules(addr, size))

    def read_set_intersects(self, slot: int, addr: int, size: int) -> bool:
        return self.rd[slot].intersects(self.granules(addr, size))


# ---------------------------------------------------------------------------
# Metrics catalog for conflict detection (squash attribution).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("uarch.conflict.squash_conflicts", _metrics.COUNTER,
                        "uarch.conflict",
                        "Epoch squashes caused by cross-threadlet memory "
                        "conflicts (algorithm 1)",
                        unit="epochs", source="squash_conflicts"),
    _metrics.MetricSpec("uarch.conflict.squash_syncs", _metrics.COUNTER,
                        "uarch.conflict",
                        "Epoch squashes caused by early loop exits (sync)",
                        unit="epochs", source="squash_syncs"),
    _metrics.MetricSpec("uarch.conflict.squash_overflow", _metrics.COUNTER,
                        "uarch.conflict",
                        "Epoch squashes caused by SSB slice overflow",
                        unit="epochs", source="squash_overflow"),
)
