"""Pipeline tracing: capture per-instruction stage timing and render a
classic pipeline diagram.

Attach a :class:`Tracer` to an :class:`~repro.uarch.core.Engine` before
running::

    engine = Engine(machine, program, memory, regs)
    tracer = Tracer.attach(engine, max_instructions=200)
    engine.run()
    print(tracer.render_pipeline())

The diagram has one row per dynamic instruction (``F`` fetch, ``D``
dispatch, ``I`` issue, ``=`` executing, ``C`` commit, with squashed
instructions marked ``x``), grouped so threadlet interleaving is visible —
a direct view of the paper's "window split across multiple
quasi-independent regions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .core import Engine, PipelineInstr


@dataclass
class TraceRecord:
    """Stage timing for one dynamic instruction."""

    seq: int
    slot: int
    epoch: int
    pc: int
    text: str
    fetch: Optional[int] = None
    dispatch: Optional[int] = None
    issue: Optional[int] = None
    ready: Optional[int] = None
    commit: Optional[int] = None
    squashed: bool = False


@dataclass
class TraceEvent:
    """A non-instruction event (spawn, squash, threadlet commit)."""

    cycle: int
    kind: str
    detail: str


class Tracer:
    """Records engine activity; see module docstring for usage."""

    def __init__(self, max_instructions: int = 2000):
        self.max_instructions = max_instructions
        self.records: Dict[int, TraceRecord] = {}
        self.events: List[TraceEvent] = []
        self._engine: Optional[Engine] = None

    # -- attachment ----------------------------------------------------------

    @classmethod
    def attach(cls, engine: Engine, max_instructions: int = 2000) -> "Tracer":
        """Wrap the engine's stage methods to record activity."""
        tracer = cls(max_instructions)
        tracer._engine = engine
        # The fast path inlines the per-stage helpers hooked below, so a
        # traced engine must run the reference pipeline (bit-identical
        # timing, just observable stage calls).
        engine.use_reference_path()

        fetch_one = engine._fetch_one
        dispatch_one = engine._dispatch_one
        issue_one = engine._issue_one
        release_entry = engine._release_entry
        try_spawn = engine._try_spawn
        drop_threadlet = engine._drop_threadlet

        def fetch_hook(t, instr):
            consumed = fetch_one(t, instr)
            if consumed and t.fetch_queue:
                tracer._on_fetch(engine.cycle, t, t.fetch_queue[-1])
            return consumed

        def dispatch_hook(t, pi):
            dispatch_one(t, pi)
            tracer._touch(pi).dispatch = engine.cycle

        def issue_hook(pi, cycle):
            issue_one(pi, cycle)
            record = tracer._touch(pi)
            record.issue = cycle
            record.ready = pi.ready_cycle

        def release_hook(pi, committed):
            release_entry(pi, committed)
            if committed:
                tracer._touch(pi).commit = engine.cycle

        def spawn_hook(t, region, label):
            before = t.successor
            try_spawn(t, region, label)
            if t.successor is not before and t.successor is not None:
                tracer.events.append(TraceEvent(
                    engine.cycle, "spawn",
                    f"threadlet slot {t.successor.slot} epoch "
                    f"{t.successor.epoch} (region {label})",
                ))

        def drop_hook(t, reason):
            for pi in list(t.inflight) + list(t.fetch_queue):
                record = tracer.records.get(pi.seq)
                if record is not None:
                    record.squashed = True
            tracer.events.append(TraceEvent(
                engine.cycle, "squash",
                f"threadlet slot {t.slot} epoch {t.epoch} ({reason})",
            ))
            drop_threadlet(t, reason)

        engine._fetch_one = fetch_hook
        engine._dispatch_one = dispatch_hook
        engine._issue_one = issue_hook
        engine._release_entry = release_hook
        engine._try_spawn = spawn_hook
        engine._drop_threadlet = drop_hook
        return tracer

    # -- recording -----------------------------------------------------------

    def _on_fetch(self, cycle: int, threadlet, pi: PipelineInstr) -> None:
        if len(self.records) >= self.max_instructions:
            return
        self.records[pi.seq] = TraceRecord(
            seq=pi.seq, slot=pi.slot, epoch=threadlet.epoch, pc=pi.pc,
            text=str(pi.instr), fetch=cycle,
        )

    def _touch(self, pi: PipelineInstr) -> TraceRecord:
        record = self.records.get(pi.seq)
        if record is None:
            record = TraceRecord(pi.seq, pi.slot, -1, pi.pc, str(pi.instr))
            if len(self.records) < self.max_instructions:
                self.records[pi.seq] = record
        return record

    # -- rendering -----------------------------------------------------------

    def render_pipeline(self, first: int = 0, count: int = 48,
                        width: int = 64) -> str:
        """An ASCII pipeline diagram for ``count`` instructions."""
        records = sorted(self.records.values(), key=lambda r: r.seq)
        records = records[first:first + count]
        if not records:
            return "(no trace records)"
        start = min(r.fetch for r in records if r.fetch is not None)
        lines = [
            f"cycle offset from {start}; F=fetch D=dispatch I=issue "
            f"==execute C=commit x=squashed"
        ]
        for r in records:
            row = [" "] * width
            def put(cycle, char):
                if cycle is None:
                    return
                pos = cycle - start
                if 0 <= pos < width:
                    row[pos] = char
            if r.issue is not None and r.ready is not None:
                for c in range(r.issue + 1, min(r.ready, start + width)):
                    put(c, "=")
            put(r.fetch, "F")
            put(r.dispatch, "D")
            put(r.issue, "I")
            put(r.commit, "C")
            flag = "x" if r.squashed else " "
            lines.append(
                f"T{r.slot}.e{r.epoch:<3d} {r.pc:4d} {flag}|{''.join(row)}| "
                f"{r.text[:32]}"
            )
        return "\n".join(lines)

    def render_events(self) -> str:
        if not self.events:
            return "(no threadlet events)"
        return "\n".join(
            f"cycle {e.cycle:6d}  {e.kind:7s} {e.detail}" for e in self.events
        )

    def stage_latencies(self) -> Dict[str, float]:
        """Mean fetch->dispatch, dispatch->issue and issue->commit gaps."""
        gaps = {"fetch_to_dispatch": [], "dispatch_to_issue": [],
                "issue_to_commit": []}
        for r in self.records.values():
            if r.fetch is not None and r.dispatch is not None:
                gaps["fetch_to_dispatch"].append(r.dispatch - r.fetch)
            if r.dispatch is not None and r.issue is not None:
                gaps["dispatch_to_issue"].append(r.issue - r.dispatch)
            if r.issue is not None and r.commit is not None:
                gaps["issue_to_commit"].append(r.commit - r.issue)
        return {
            key: (sum(vals) / len(vals) if vals else 0.0)
            for key, vals in gaps.items()
        }
