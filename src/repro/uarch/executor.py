"""Functional (architectural) executor for the reproduction ISA.

This is the golden reference model: the timing simulators and the TLS
baselines all execute instructions through :func:`execute_one`, differing
only in *when* instructions execute and *which memory view* they see.
Speculative threadlets pass an SSB-backed memory view; the architectural
path passes :class:`~repro.uarch.memory_state.SparseMemory` directly.

The executor treats LoopFrog hints as nops, matching the paper's guarantee
that hint instructions never change sequential semantics (section 3).

Two closure-compiled siblings trade this module's generality for speed —
:mod:`repro.sampling.fastforward` (architectural-only fast-forwarding)
and :mod:`repro.uarch.fastpath` (the detailed engine's fast path).  Both
are differentially tested against the dispatch-table semantics here,
which stays the oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol

from ..errors import ExecutionError
from ..isa.instructions import OPCODE_ORDER, Instruction, Opcode
from ..obs import metrics as _metrics
from ..isa.program import Program
from ..isa.registers import initial_register_file
from .memory_state import (
    MASK64,
    SparseMemory,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)


class MemoryView(Protocol):
    """Interface the executor needs from memory.

    ``SparseMemory`` satisfies it directly; the LoopFrog model substitutes a
    threadlet-specific view that routes accesses through the SSB.
    """

    def load(self, addr: int, size: int) -> int: ...

    def store(self, addr: int, size: int, value: int) -> None: ...


@dataclass(slots=True)
class ExecResult:
    """Outcome of executing a single instruction."""

    next_pc: int
    taken: bool = False  # branch taken (branches only)
    mem_addr: Optional[int] = None  # effective address (memory ops only)
    mem_size: int = 0


def _as_int(value: float) -> int:
    return to_signed(int(value) & MASK64)


# ---------------------------------------------------------------------------
# Per-opcode handlers.  execute_one used to be a long if/elif chain over the
# opcode; the timing model executes every dynamic instruction through it, so
# the linear scan (plus enum identity tests) was one of the hottest paths in
# whole-suite runs.  Handlers are looked up by the precomputed
# ``Instruction.opcode_index`` via list indexing, and every opcode gets its
# own handler — no residual per-call enum identity tests inside shared
# multi-opcode bodies.
# ---------------------------------------------------------------------------


def _exec_add(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = to_signed((regs[srcs[0]] + b) & MASK64)
    return ExecResult(pc + 1)


def _exec_sub(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = to_signed((regs[srcs[0]] - b) & MASK64)
    return ExecResult(pc + 1)


def _exec_mul(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = to_signed((regs[srcs[0]] * b) & MASK64)
    return ExecResult(pc + 1)


def _exec_div(instr, regs, memory, pc):
    srcs = instr.srcs
    a = int(regs[srcs[0]])
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    if b == 0:
        raise ExecutionError(f"division by zero at pc={pc}: {instr}")
    q = abs(a) // abs(b)  # truncate toward zero
    if (a < 0) != (b < 0):
        q = -q
    regs[instr.dest] = to_signed(q & MASK64)
    return ExecResult(pc + 1)


def _exec_rem(instr, regs, memory, pc):
    srcs = instr.srcs
    a = int(regs[srcs[0]])
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    if b == 0:
        raise ExecutionError(f"division by zero at pc={pc}: {instr}")
    q = abs(a) // abs(b)  # truncate toward zero
    if (a < 0) != (b < 0):
        q = -q
    regs[instr.dest] = to_signed((a - q * b) & MASK64)
    return ExecResult(pc + 1)


def _exec_and(instr, regs, memory, pc):
    srcs = instr.srcs
    a = to_unsigned(int(regs[srcs[0]]))
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    regs[instr.dest] = to_signed(a & to_unsigned(b))
    return ExecResult(pc + 1)


def _exec_or(instr, regs, memory, pc):
    srcs = instr.srcs
    a = to_unsigned(int(regs[srcs[0]]))
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    regs[instr.dest] = to_signed(a | to_unsigned(b))
    return ExecResult(pc + 1)


def _exec_xor(instr, regs, memory, pc):
    srcs = instr.srcs
    a = to_unsigned(int(regs[srcs[0]]))
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    regs[instr.dest] = to_signed(a ^ to_unsigned(b))
    return ExecResult(pc + 1)


def _exec_shl(instr, regs, memory, pc):
    srcs = instr.srcs
    a = to_unsigned(int(regs[srcs[0]]))
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    regs[instr.dest] = to_signed((a << (b & 63)) & MASK64)
    return ExecResult(pc + 1)


def _exec_shr(instr, regs, memory, pc):
    # Logical right shift.
    srcs = instr.srcs
    a = to_unsigned(int(regs[srcs[0]]))
    b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
    regs[instr.dest] = to_signed(a >> (b & 63))
    return ExecResult(pc + 1)


def _exec_slt(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] < b)
    return ExecResult(pc + 1)


def _exec_sle(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] <= b)
    return ExecResult(pc + 1)


def _exec_seq(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] == b)
    return ExecResult(pc + 1)


def _exec_sne(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] != b)
    return ExecResult(pc + 1)


def _exec_min(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = min(regs[srcs[0]], b)
    return ExecResult(pc + 1)


def _exec_max(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = max(regs[srcs[0]], b)
    return ExecResult(pc + 1)


def _exec_mov(instr, regs, memory, pc):
    regs[instr.dest] = regs[instr.srcs[0]]
    return ExecResult(pc + 1)


def _exec_li(instr, regs, memory, pc):
    regs[instr.dest] = _as_int(instr.imm)
    return ExecResult(pc + 1)


def _exec_fadd(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = regs[srcs[0]] + b
    return ExecResult(pc + 1)


def _exec_fsub(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = regs[srcs[0]] - b
    return ExecResult(pc + 1)


def _exec_fmul(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = regs[srcs[0]] * b
    return ExecResult(pc + 1)


def _exec_fdiv(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    if b == 0.0:
        raise ExecutionError(f"float division by zero at pc={pc}: {instr}")
    regs[instr.dest] = regs[srcs[0]] / b
    return ExecResult(pc + 1)


def _exec_fsqrt(instr, regs, memory, pc):
    a = regs[instr.srcs[0]]
    if a < 0.0:
        raise ExecutionError(f"sqrt of negative at pc={pc}: {instr}")
    regs[instr.dest] = math.sqrt(a)
    return ExecResult(pc + 1)


def _exec_fmin(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = min(regs[srcs[0]], b)
    return ExecResult(pc + 1)


def _exec_fmax(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = max(regs[srcs[0]], b)
    return ExecResult(pc + 1)


def _exec_fabs(instr, regs, memory, pc):
    regs[instr.dest] = abs(regs[instr.srcs[0]])
    return ExecResult(pc + 1)


def _exec_fli(instr, regs, memory, pc):
    regs[instr.dest] = float(instr.imm)
    return ExecResult(pc + 1)


def _exec_fcvt(instr, regs, memory, pc):
    regs[instr.dest] = float(regs[instr.srcs[0]])
    return ExecResult(pc + 1)


def _exec_icvt(instr, regs, memory, pc):
    regs[instr.dest] = _as_int(regs[instr.srcs[0]])
    return ExecResult(pc + 1)


def _exec_fslt(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] < b)
    return ExecResult(pc + 1)


def _exec_fsle(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] <= b)
    return ExecResult(pc + 1)


def _exec_fseq(instr, regs, memory, pc):
    srcs = instr.srcs
    b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
    regs[instr.dest] = int(regs[srcs[0]] == b)
    return ExecResult(pc + 1)


def _exec_load(instr, regs, memory, pc):
    addr = int(regs[instr.srcs[0]]) + int(instr.imm or 0)
    size = instr.size
    raw = memory.load(addr, size)
    regs[instr.dest] = to_signed(raw, 8 * size)
    return ExecResult(pc + 1, mem_addr=addr, mem_size=size)


def _exec_store(instr, regs, memory, pc):
    srcs = instr.srcs
    addr = int(regs[srcs[1]]) + int(instr.imm or 0)
    size = instr.size
    memory.store(addr, size, to_unsigned(int(regs[srcs[0]]), 8 * size))
    return ExecResult(pc + 1, mem_addr=addr, mem_size=size)


def _exec_fload(instr, regs, memory, pc):
    addr = int(regs[instr.srcs[0]]) + int(instr.imm or 0)
    size = instr.size
    regs[instr.dest] = bits_to_float(memory.load(addr, size), size)
    return ExecResult(pc + 1, mem_addr=addr, mem_size=size)


def _exec_fstore(instr, regs, memory, pc):
    srcs = instr.srcs
    addr = int(regs[srcs[1]]) + int(instr.imm or 0)
    size = instr.size
    memory.store(addr, size, float_to_bits(regs[srcs[0]], size))
    return ExecResult(pc + 1, mem_addr=addr, mem_size=size)


def _exec_jmp(instr, regs, memory, pc):
    return ExecResult(instr.target_index, taken=True)


def _exec_beqz(instr, regs, memory, pc):
    if regs[instr.srcs[0]] == 0:
        return ExecResult(instr.target_index, taken=True)
    return ExecResult(pc + 1, taken=False)


def _exec_bnez(instr, regs, memory, pc):
    if regs[instr.srcs[0]] != 0:
        return ExecResult(instr.target_index, taken=True)
    return ExecResult(pc + 1, taken=False)


def _exec_call(instr, regs, memory, pc):
    regs["ra"] = pc + 1
    return ExecResult(instr.target_index, taken=True)


def _exec_ret(instr, regs, memory, pc):
    return ExecResult(int(regs["ra"]), taken=True)


def _exec_nop(instr, regs, memory, pc):
    # Hints and system ops are functional nops; HALT is handled by callers.
    return ExecResult(pc + 1)


_HANDLERS = {
    Opcode.ADD: _exec_add,
    Opcode.SUB: _exec_sub,
    Opcode.MUL: _exec_mul,
    Opcode.DIV: _exec_div,
    Opcode.REM: _exec_rem,
    Opcode.AND: _exec_and,
    Opcode.OR: _exec_or,
    Opcode.XOR: _exec_xor,
    Opcode.SHL: _exec_shl,
    Opcode.SHR: _exec_shr,
    Opcode.SLT: _exec_slt,
    Opcode.SLE: _exec_sle,
    Opcode.SEQ: _exec_seq,
    Opcode.SNE: _exec_sne,
    Opcode.MIN: _exec_min,
    Opcode.MAX: _exec_max,
    Opcode.MOV: _exec_mov,
    Opcode.LI: _exec_li,
    Opcode.FADD: _exec_fadd,
    Opcode.FSUB: _exec_fsub,
    Opcode.FMUL: _exec_fmul,
    Opcode.FDIV: _exec_fdiv,
    Opcode.FSQRT: _exec_fsqrt,
    Opcode.FMIN: _exec_fmin,
    Opcode.FMAX: _exec_fmax,
    Opcode.FABS: _exec_fabs,
    Opcode.FMOV: _exec_mov,
    Opcode.FLI: _exec_fli,
    Opcode.FCVT: _exec_fcvt,
    Opcode.ICVT: _exec_icvt,
    Opcode.FSLT: _exec_fslt,
    Opcode.FSLE: _exec_fsle,
    Opcode.FSEQ: _exec_fseq,
    Opcode.LOAD: _exec_load,
    Opcode.STORE: _exec_store,
    Opcode.FLOAD: _exec_fload,
    Opcode.FSTORE: _exec_fstore,
    Opcode.JMP: _exec_jmp,
    Opcode.BEQZ: _exec_beqz,
    Opcode.BNEZ: _exec_bnez,
    Opcode.CALL: _exec_call,
    Opcode.RET: _exec_ret,
    Opcode.DETACH: _exec_nop,
    Opcode.REATTACH: _exec_nop,
    Opcode.SYNC: _exec_nop,
    Opcode.NOP: _exec_nop,
    Opcode.HALT: _exec_nop,
}


def _exec_unimplemented_factory(op):
    def _handler(instr, regs, memory, pc):
        raise ExecutionError(f"unimplemented opcode {op!r} at pc={pc}")
    return _handler


# Handler table indexed by ``Instruction.opcode_index`` (see OPCODE_ORDER).
DISPATCH = [
    _HANDLERS.get(op) or _exec_unimplemented_factory(op) for op in OPCODE_ORDER
]


def execute_one(
    instr: Instruction,
    regs: Dict[str, float],
    memory: MemoryView,
    pc: int,
) -> ExecResult:
    """Execute ``instr`` against ``regs``/``memory``; return control outcome.

    Integer registers hold signed 64-bit Python ints (wrapped on overflow);
    FP registers hold Python floats.  Raises :class:`ExecutionError` on
    division by zero or malformed instructions.
    """
    return DISPATCH[instr.opcode_index](instr, regs, memory, pc)


@dataclass
class RunResult:
    """Summary of a whole-program functional run."""

    instructions: int
    registers: Dict[str, float]
    memory: SparseMemory
    halted: bool
    dynamic_counts: Dict[Opcode, int] = field(default_factory=dict)


class Executor:
    """Convenience wrapper: run a whole :class:`Program` to completion.

    Args:
        program: the program to run.
        memory: optional pre-initialised memory (workload inputs).
        trace_hook: optional callable invoked per retired instruction with
            ``(pc, instr, result)``; used by profiling and by tests.
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[SparseMemory] = None,
        trace_hook: Optional[Callable[[int, Instruction, ExecResult], None]] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else SparseMemory()
        self.regs = initial_register_file()
        self.pc = 0
        self.halted = False
        self.instruction_count = 0
        self.dynamic_counts: Dict[Opcode, int] = {}
        self._trace_hook = trace_hook

    def step(self) -> Optional[Instruction]:
        """Execute one instruction; returns it, or ``None`` once halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(
                f"pc {self.pc} out of range in {self.program.name}"
            )
        instr = self.program[self.pc]
        if instr.opcode is Opcode.HALT:
            self.halted = True
            self.instruction_count += 1
            return instr
        result = execute_one(instr, self.regs, self.memory, self.pc)
        self.instruction_count += 1
        counts = self.dynamic_counts
        counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        if self._trace_hook is not None:
            self._trace_hook(self.pc, instr, result)
        self.pc = result.next_pc
        return instr

    def run(self, max_instructions: int = 50_000_000) -> RunResult:
        """Run until ``halt`` or the instruction budget is exhausted."""
        while not self.halted:
            if self.instruction_count >= max_instructions:
                raise ExecutionError(
                    f"{self.program.name} exceeded {max_instructions} instructions"
                )
            self.step()
        return RunResult(
            instructions=self.instruction_count,
            registers=dict(self.regs),
            memory=self.memory,
            halted=self.halted,
            dynamic_counts=dict(self.dynamic_counts),
        )


def run_program(
    program: Program,
    memory: Optional[SparseMemory] = None,
    max_instructions: int = 50_000_000,
) -> RunResult:
    """Run ``program`` functionally and return its :class:`RunResult`."""
    return Executor(program, memory).run(max_instructions=max_instructions)


# ---------------------------------------------------------------------------
# Metrics catalog for the functional executor (collected from RunResult).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("uarch.executor.instructions", _metrics.COUNTER,
                        "uarch.executor",
                        "Dynamic instructions retired by a functional run",
                        unit="instructions", source="instructions"),
    _metrics.MetricSpec("uarch.executor.opcode_counts", _metrics.HISTOGRAM,
                        "uarch.executor",
                        "Dynamic instruction count per opcode",
                        unit="instructions",
                        derive=lambda r: {
                            op.value: n for op, n in r.dynamic_counts.items()
                        }),
)
