"""Functional (architectural) executor for the reproduction ISA.

This is the golden reference model: the timing simulators and the TLS
baselines all execute instructions through :func:`execute_one`, differing
only in *when* instructions execute and *which memory view* they see.
Speculative threadlets pass an SSB-backed memory view; the architectural
path passes :class:`~repro.uarch.memory_state.SparseMemory` directly.

The executor treats LoopFrog hints as nops, matching the paper's guarantee
that hint instructions never change sequential semantics (section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol

from ..errors import ExecutionError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from ..isa.registers import initial_register_file
from .memory_state import (
    MASK64,
    SparseMemory,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)


class MemoryView(Protocol):
    """Interface the executor needs from memory.

    ``SparseMemory`` satisfies it directly; the LoopFrog model substitutes a
    threadlet-specific view that routes accesses through the SSB.
    """

    def load(self, addr: int, size: int) -> int: ...

    def store(self, addr: int, size: int, value: int) -> None: ...


@dataclass
class ExecResult:
    """Outcome of executing a single instruction."""

    next_pc: int
    taken: bool = False  # branch taken (branches only)
    mem_addr: Optional[int] = None  # effective address (memory ops only)
    mem_size: int = 0


def _as_int(value: float) -> int:
    return to_signed(int(value) & MASK64)


def execute_one(
    instr: Instruction,
    regs: Dict[str, float],
    memory: MemoryView,
    pc: int,
) -> ExecResult:
    """Execute ``instr`` against ``regs``/``memory``; return control outcome.

    Integer registers hold signed 64-bit Python ints (wrapped on overflow);
    FP registers hold Python floats.  Raises :class:`ExecutionError` on
    division by zero or malformed instructions.
    """
    op = instr.opcode
    srcs = instr.srcs

    # Fast path: integer ALU with optional immediate second operand.
    if op is Opcode.ADD:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = to_signed((regs[srcs[0]] + b) & MASK64)
        return ExecResult(pc + 1)
    if op is Opcode.SUB:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = to_signed((regs[srcs[0]] - b) & MASK64)
        return ExecResult(pc + 1)
    if op is Opcode.MUL:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = to_signed((regs[srcs[0]] * b) & MASK64)
        return ExecResult(pc + 1)
    if op in (Opcode.DIV, Opcode.REM):
        a = int(regs[srcs[0]])
        b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
        if b == 0:
            raise ExecutionError(f"division by zero at pc={pc}: {instr}")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        r = a - q * b
        regs[instr.dest] = to_signed((q if op is Opcode.DIV else r) & MASK64)
        return ExecResult(pc + 1)
    if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR):
        a = to_unsigned(int(regs[srcs[0]]))
        b = int(regs[srcs[1]] if len(srcs) > 1 else instr.imm)
        if op is Opcode.AND:
            v = a & to_unsigned(b)
        elif op is Opcode.OR:
            v = a | to_unsigned(b)
        elif op is Opcode.XOR:
            v = a ^ to_unsigned(b)
        elif op is Opcode.SHL:
            v = (a << (b & 63)) & MASK64
        else:  # SHR, logical
            v = a >> (b & 63)
        regs[instr.dest] = to_signed(v)
        return ExecResult(pc + 1)
    if op in (Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE):
        a = regs[srcs[0]]
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        if op is Opcode.SLT:
            v = a < b
        elif op is Opcode.SLE:
            v = a <= b
        elif op is Opcode.SEQ:
            v = a == b
        else:
            v = a != b
        regs[instr.dest] = int(v)
        return ExecResult(pc + 1)
    if op in (Opcode.MIN, Opcode.MAX):
        a = regs[srcs[0]]
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = min(a, b) if op is Opcode.MIN else max(a, b)
        return ExecResult(pc + 1)
    if op is Opcode.MOV:
        regs[instr.dest] = regs[srcs[0]]
        return ExecResult(pc + 1)
    if op is Opcode.LI:
        regs[instr.dest] = _as_int(instr.imm)
        return ExecResult(pc + 1)

    # Floating point.
    if op is Opcode.FADD:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = regs[srcs[0]] + b
        return ExecResult(pc + 1)
    if op is Opcode.FSUB:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = regs[srcs[0]] - b
        return ExecResult(pc + 1)
    if op is Opcode.FMUL:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = regs[srcs[0]] * b
        return ExecResult(pc + 1)
    if op is Opcode.FDIV:
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        if b == 0.0:
            raise ExecutionError(f"float division by zero at pc={pc}: {instr}")
        regs[instr.dest] = regs[srcs[0]] / b
        return ExecResult(pc + 1)
    if op is Opcode.FSQRT:
        a = regs[srcs[0]]
        if a < 0.0:
            raise ExecutionError(f"sqrt of negative at pc={pc}: {instr}")
        regs[instr.dest] = math.sqrt(a)
        return ExecResult(pc + 1)
    if op in (Opcode.FMIN, Opcode.FMAX):
        a = regs[srcs[0]]
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        regs[instr.dest] = min(a, b) if op is Opcode.FMIN else max(a, b)
        return ExecResult(pc + 1)
    if op is Opcode.FABS:
        regs[instr.dest] = abs(regs[srcs[0]])
        return ExecResult(pc + 1)
    if op is Opcode.FMOV:
        regs[instr.dest] = regs[srcs[0]]
        return ExecResult(pc + 1)
    if op is Opcode.FLI:
        regs[instr.dest] = float(instr.imm)
        return ExecResult(pc + 1)
    if op is Opcode.FCVT:
        regs[instr.dest] = float(regs[srcs[0]])
        return ExecResult(pc + 1)
    if op is Opcode.ICVT:
        regs[instr.dest] = _as_int(regs[srcs[0]])
        return ExecResult(pc + 1)
    if op in (Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ):
        a = regs[srcs[0]]
        b = regs[srcs[1]] if len(srcs) > 1 else instr.imm
        if op is Opcode.FSLT:
            v = a < b
        elif op is Opcode.FSLE:
            v = a <= b
        else:
            v = a == b
        regs[instr.dest] = int(v)
        return ExecResult(pc + 1)

    # Memory.
    if op is Opcode.LOAD:
        addr = int(regs[srcs[0]]) + int(instr.imm or 0)
        raw = memory.load(addr, instr.size)
        regs[instr.dest] = to_signed(raw, 8 * instr.size)
        return ExecResult(pc + 1, mem_addr=addr, mem_size=instr.size)
    if op is Opcode.STORE:
        addr = int(regs[srcs[1]]) + int(instr.imm or 0)
        memory.store(addr, instr.size, to_unsigned(int(regs[srcs[0]]), 8 * instr.size))
        return ExecResult(pc + 1, mem_addr=addr, mem_size=instr.size)
    if op is Opcode.FLOAD:
        addr = int(regs[srcs[0]]) + int(instr.imm or 0)
        regs[instr.dest] = bits_to_float(memory.load(addr, instr.size), instr.size)
        return ExecResult(pc + 1, mem_addr=addr, mem_size=instr.size)
    if op is Opcode.FSTORE:
        addr = int(regs[srcs[1]]) + int(instr.imm or 0)
        memory.store(addr, instr.size, float_to_bits(regs[srcs[0]], instr.size))
        return ExecResult(pc + 1, mem_addr=addr, mem_size=instr.size)

    # Control flow.
    if op is Opcode.JMP:
        return ExecResult(instr.target_index, taken=True)
    if op is Opcode.BEQZ:
        if regs[srcs[0]] == 0:
            return ExecResult(instr.target_index, taken=True)
        return ExecResult(pc + 1, taken=False)
    if op is Opcode.BNEZ:
        if regs[srcs[0]] != 0:
            return ExecResult(instr.target_index, taken=True)
        return ExecResult(pc + 1, taken=False)
    if op is Opcode.CALL:
        regs["ra"] = pc + 1
        return ExecResult(instr.target_index, taken=True)
    if op is Opcode.RET:
        return ExecResult(int(regs["ra"]), taken=True)

    # Hints and system ops are functional nops; HALT is handled by callers.
    if op in (Opcode.DETACH, Opcode.REATTACH, Opcode.SYNC, Opcode.NOP, Opcode.HALT):
        return ExecResult(pc + 1)

    raise ExecutionError(f"unimplemented opcode {op!r} at pc={pc}")


@dataclass
class RunResult:
    """Summary of a whole-program functional run."""

    instructions: int
    registers: Dict[str, float]
    memory: SparseMemory
    halted: bool
    dynamic_counts: Dict[Opcode, int] = field(default_factory=dict)


class Executor:
    """Convenience wrapper: run a whole :class:`Program` to completion.

    Args:
        program: the program to run.
        memory: optional pre-initialised memory (workload inputs).
        trace_hook: optional callable invoked per retired instruction with
            ``(pc, instr, result)``; used by profiling and by tests.
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[SparseMemory] = None,
        trace_hook: Optional[Callable[[int, Instruction, ExecResult], None]] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else SparseMemory()
        self.regs = initial_register_file()
        self.pc = 0
        self.halted = False
        self.instruction_count = 0
        self.dynamic_counts: Dict[Opcode, int] = {}
        self._trace_hook = trace_hook

    def step(self) -> Optional[Instruction]:
        """Execute one instruction; returns it, or ``None`` once halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(
                f"pc {self.pc} out of range in {self.program.name}"
            )
        instr = self.program[self.pc]
        if instr.opcode is Opcode.HALT:
            self.halted = True
            self.instruction_count += 1
            return instr
        result = execute_one(instr, self.regs, self.memory, self.pc)
        self.instruction_count += 1
        counts = self.dynamic_counts
        counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        if self._trace_hook is not None:
            self._trace_hook(self.pc, instr, result)
        self.pc = result.next_pc
        return instr

    def run(self, max_instructions: int = 50_000_000) -> RunResult:
        """Run until ``halt`` or the instruction budget is exhausted."""
        while not self.halted:
            if self.instruction_count >= max_instructions:
                raise ExecutionError(
                    f"{self.program.name} exceeded {max_instructions} instructions"
                )
            self.step()
        return RunResult(
            instructions=self.instruction_count,
            registers=dict(self.regs),
            memory=self.memory,
            halted=self.halted,
            dynamic_counts=dict(self.dynamic_counts),
        )


def run_program(
    program: Program,
    memory: Optional[SparseMemory] = None,
    max_instructions: int = 50_000_000,
) -> RunResult:
    """Run ``program`` functionally and return its :class:`RunResult`."""
    return Executor(program, memory).run(max_instructions=max_instructions)
