"""Compiled per-instruction fetch path for the detailed timing engine.

This extends the closure-compilation technique of
:mod:`repro.sampling.fastforward` into :class:`repro.uarch.core.Engine`'s
fetch/decode/execute stage.  The reference fetch path re-interprets every
dynamic instruction through :data:`repro.uarch.executor.DISPATCH`: an
indexed handler call that re-reads ``instr.srcs``/``instr.imm``, allocates
an :class:`~repro.uarch.executor.ExecResult`, and re-derives signedness
masks per call.  Here each *static* instruction is compiled once per
program into a closure with its operands, immediates, wrap constants and
fall-through pc bound as locals, so steady-state fetch does no decode work
at all.

Handler contract (one closure per pc)::

    next_pc = handler(regs, view, out)

* ``regs`` is the threadlet's register dict, mutated in place.
* ``view`` is the threadlet's memory view (``load``/``store`` bound to the
  SSB or architectural memory by the engine).
* ``out`` is a two-slot scratch list owned by the engine:
  ``out[0]`` receives the effective address (memory ops only) and
  ``out[1]`` the taken flag (branches only).  The engine reads each slot
  only when the per-pc :data:`FLAG_MEM`/:data:`FLAG_BRANCH` bit is set,
  so stale values from earlier instructions are never observed.

Semantics must stay *bit-identical* to ``executor.py`` — including the
text of :class:`~repro.errors.ExecutionError` messages, which the engine
stores in ``Threadlet.faulted`` and later surfaces in the architectural
fault exception the parity suite compares.  Any behaviour change here is
an engine-semantics change and belongs in ``executor.py`` first.
"""

from __future__ import annotations

import math
import weakref
from typing import Callable, List

from ..errors import ExecutionError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from .memory_state import MASK64, bits_to_float, float_to_bits

# Per-pc classification bits (FastProgram.flags).
FLAG_HALT = 1
FLAG_LOAD = 2
FLAG_STORE = 4
FLAG_BRANCH = 8
FLAG_HINT = 16
FLAG_MEM = FLAG_LOAD | FLAG_STORE

_SIGN64 = 1 << 63
_WRAP64 = 1 << 64

Handler = Callable[[dict, object, list], int]


def _compile_instruction(instr: Instruction, pc: int) -> Handler:
    """One closure for one static instruction; mirrors executor.py exactly."""
    op = instr.opcode
    srcs = instr.srcs
    d = instr.dest
    imm = instr.imm
    nxt = pc + 1
    two = len(srcs) > 1

    # -- integer ALU (wrapped signed 64-bit) -------------------------------
    if op is Opcode.ADD:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                v = (regs[_a] + regs[_b]) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                v = (regs[_a] + _i) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h
    if op is Opcode.SUB:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                v = (regs[_a] - regs[_b]) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                v = (regs[_a] - _i) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h
    if op is Opcode.MUL:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                v = (regs[_a] * regs[_b]) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                v = (regs[_a] * _i) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h
    if op is Opcode.DIV or op is Opcode.REM:
        msg = f"division by zero at pc={pc}: {instr}"
        is_rem = op is Opcode.REM

        def h(regs, view, out, _a=srcs[0], _b=(srcs[1] if two else None),
              _i=imm, _d=d, _n=nxt, _msg=msg, _rem=is_rem):
            a = int(regs[_a])
            b = int(regs[_b]) if _b is not None else int(_i)
            if b == 0:
                raise ExecutionError(_msg)
            q = abs(a) // abs(b)  # truncate toward zero
            if (a < 0) != (b < 0):
                q = -q
            v = ((a - q * b) if _rem else q) & MASK64
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h

    # -- bitwise / shifts (operands read as unsigned via int-and-mask) -----
    if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
        kind = op

        def h(regs, view, out, _a=srcs[0], _b=(srcs[1] if two else None),
              _i=imm, _d=d, _n=nxt, _k=kind):
            a = int(regs[_a]) & MASK64
            b = (int(regs[_b]) if _b is not None else int(_i)) & MASK64
            if _k is Opcode.AND:
                v = a & b
            elif _k is Opcode.OR:
                v = a | b
            else:
                v = a ^ b
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h
    if op is Opcode.SHL or op is Opcode.SHR:
        left = op is Opcode.SHL

        def h(regs, view, out, _a=srcs[0], _b=(srcs[1] if two else None),
              _i=imm, _d=d, _n=nxt, _l=left):
            a = int(regs[_a]) & MASK64
            b = int(regs[_b]) if _b is not None else int(_i)
            v = ((a << (b & 63)) & MASK64) if _l else (a >> (b & 63))
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h

    # -- comparisons (int and float share executor bodies) -----------------
    if op in (Opcode.SLT, Opcode.FSLT):
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = int(regs[_a] < regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = int(regs[_a] < _i)
                return _n
        return h
    if op in (Opcode.SLE, Opcode.FSLE):
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = int(regs[_a] <= regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = int(regs[_a] <= _i)
                return _n
        return h
    if op in (Opcode.SEQ, Opcode.FSEQ):
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = int(regs[_a] == regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = int(regs[_a] == _i)
                return _n
        return h
    if op is Opcode.SNE:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = int(regs[_a] != regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = int(regs[_a] != _i)
                return _n
        return h
    if op in (Opcode.MIN, Opcode.FMIN):
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = min(regs[_a], regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = min(regs[_a], _i)
                return _n
        return h
    if op in (Opcode.MAX, Opcode.FMAX):
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = max(regs[_a], regs[_b])
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = max(regs[_a], _i)
                return _n
        return h

    # -- moves / immediates / conversions ----------------------------------
    if op is Opcode.MOV or op is Opcode.FMOV:
        def h(regs, view, out, _a=srcs[0], _d=d, _n=nxt):
            regs[_d] = regs[_a]
            return _n
        return h
    if op is Opcode.LI:
        v = int(imm) & MASK64
        const = v - _WRAP64 if v >= _SIGN64 else v

        def h(regs, view, out, _c=const, _d=d, _n=nxt):
            regs[_d] = _c
            return _n
        return h
    if op is Opcode.FLI:
        const = float(imm)

        def h(regs, view, out, _c=const, _d=d, _n=nxt):
            regs[_d] = _c
            return _n
        return h
    if op is Opcode.FCVT:
        def h(regs, view, out, _a=srcs[0], _d=d, _n=nxt):
            regs[_d] = float(regs[_a])
            return _n
        return h
    if op is Opcode.ICVT:
        def h(regs, view, out, _a=srcs[0], _d=d, _n=nxt):
            v = int(regs[_a]) & MASK64
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h

    # -- float arithmetic ---------------------------------------------------
    if op is Opcode.FADD:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = regs[_a] + regs[_b]
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = regs[_a] + _i
                return _n
        return h
    if op is Opcode.FSUB:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = regs[_a] - regs[_b]
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = regs[_a] - _i
                return _n
        return h
    if op is Opcode.FMUL:
        if two:
            def h(regs, view, out, _a=srcs[0], _b=srcs[1], _d=d, _n=nxt):
                regs[_d] = regs[_a] * regs[_b]
                return _n
        else:
            def h(regs, view, out, _a=srcs[0], _i=imm, _d=d, _n=nxt):
                regs[_d] = regs[_a] * _i
                return _n
        return h
    if op is Opcode.FDIV:
        msg = f"float division by zero at pc={pc}: {instr}"

        def h(regs, view, out, _a=srcs[0], _b=(srcs[1] if two else None),
              _i=imm, _d=d, _n=nxt, _msg=msg):
            b = regs[_b] if _b is not None else _i
            if b == 0.0:
                raise ExecutionError(_msg)
            regs[_d] = regs[_a] / b
            return _n
        return h
    if op is Opcode.FSQRT:
        msg = f"sqrt of negative at pc={pc}: {instr}"

        def h(regs, view, out, _a=srcs[0], _d=d, _n=nxt, _msg=msg,
              _sqrt=math.sqrt):
            a = regs[_a]
            if a < 0.0:
                raise ExecutionError(_msg)
            regs[_d] = _sqrt(a)
            return _n
        return h
    if op is Opcode.FABS:
        def h(regs, view, out, _a=srcs[0], _d=d, _n=nxt):
            regs[_d] = abs(regs[_a])
            return _n
        return h

    # -- memory -------------------------------------------------------------
    if op is Opcode.LOAD:
        size = instr.size
        off = int(imm or 0)
        sign = 1 << (8 * size - 1)
        wrap = 1 << (8 * size)

        def h(regs, view, out, _a=srcs[0], _o=off, _z=size, _s=sign,
              _w=wrap, _d=d, _n=nxt):
            addr = int(regs[_a]) + _o
            out[0] = addr
            raw = view.load(addr, _z)
            regs[_d] = raw - _w if raw >= _s else raw
            return _n
        return h
    if op is Opcode.STORE:
        size = instr.size
        off = int(imm or 0)
        mask = (1 << (8 * size)) - 1

        def h(regs, view, out, _v=srcs[0], _a=srcs[1], _o=off, _z=size,
              _m=mask, _n=nxt):
            addr = int(regs[_a]) + _o
            out[0] = addr
            view.store(addr, _z, int(regs[_v]) & _m)
            return _n
        return h
    if op is Opcode.FLOAD:
        size = instr.size
        off = int(imm or 0)

        def h(regs, view, out, _a=srcs[0], _o=off, _z=size, _d=d, _n=nxt,
              _btf=bits_to_float):
            addr = int(regs[_a]) + _o
            out[0] = addr
            regs[_d] = _btf(view.load(addr, _z), _z)
            return _n
        return h
    if op is Opcode.FSTORE:
        size = instr.size
        off = int(imm or 0)

        def h(regs, view, out, _v=srcs[0], _a=srcs[1], _o=off, _z=size,
              _n=nxt, _ftb=float_to_bits):
            addr = int(regs[_a]) + _o
            out[0] = addr
            view.store(addr, _z, _ftb(regs[_v], _z))
            return _n
        return h

    # -- control flow --------------------------------------------------------
    if op is Opcode.JMP:
        def h(regs, view, out, _t=instr.target_index):
            out[1] = True
            return _t
        return h
    if op is Opcode.BEQZ:
        def h(regs, view, out, _a=srcs[0], _t=instr.target_index, _n=nxt):
            if regs[_a] == 0:
                out[1] = True
                return _t
            out[1] = False
            return _n
        return h
    if op is Opcode.BNEZ:
        def h(regs, view, out, _a=srcs[0], _t=instr.target_index, _n=nxt):
            if regs[_a] != 0:
                out[1] = True
                return _t
            out[1] = False
            return _n
        return h
    if op is Opcode.CALL:
        def h(regs, view, out, _t=instr.target_index, _r=pc + 1):
            regs["ra"] = _r
            out[1] = True
            return _t
        return h
    if op is Opcode.RET:
        # No range check here: the engine validates the next fetch's pc,
        # exactly like the reference path (executor _exec_ret).
        def h(regs, view, out):
            out[1] = True
            return int(regs["ra"])
        return h

    # -- hints / system (functional nops; HALT never executes) -------------
    if op in (Opcode.DETACH, Opcode.REATTACH, Opcode.SYNC, Opcode.NOP,
              Opcode.HALT):
        def h(regs, view, out, _n=nxt):
            return _n
        return h

    msg = f"unimplemented opcode {op!r} at pc={pc}"

    def h(regs, view, out, _msg=msg):
        raise ExecutionError(_msg)
    return h


class FastProgram:
    """Per-pc compiled handlers and classification flags for one program."""

    __slots__ = ("handlers", "flags", "sizes")

    def __init__(self, program: Program):
        instructions = program.instructions
        self.handlers: List[Handler] = [
            _compile_instruction(instr, pc)
            for pc, instr in enumerate(instructions)
        ]
        flags: List[int] = []
        sizes: List[int] = []
        for instr in instructions:
            f = 0
            if instr.opcode is Opcode.HALT:
                f |= FLAG_HALT
            if instr.is_load:
                f |= FLAG_LOAD
            if instr.is_store:
                f |= FLAG_STORE
            if instr.is_branch:
                f |= FLAG_BRANCH
            if instr.is_hint:
                f |= FLAG_HINT
            flags.append(f)
            sizes.append(instr.size)
        self.flags = flags
        self.sizes = sizes


_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Program, FastProgram]" = (
    weakref.WeakKeyDictionary()
)


def fast_program(program: Program) -> FastProgram:
    """Memoized compilation: one FastProgram per live Program object."""
    fp = _PROGRAM_CACHE.get(program)
    if fp is None:
        fp = FastProgram(program)
        _PROGRAM_CACHE[program] = fp
    return fp
