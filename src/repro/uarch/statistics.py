"""Statistics collected by the timing models.

:class:`SimStats` is a plain counter bag with derived metrics.  The LoopFrog
analyses (figures 7/8, table 2 attribution) read these fields; keeping them
in one place documents exactly what each experiment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(slots=True)
class RegionStats:
    """Per parallel-region (loop) statistics, keyed by region label."""

    region: str
    entries: int = 0                 # times the architectural thread entered
    arch_cycles: int = 0             # cycles with this region active
    arch_instructions: int = 0       # architectural instructions in-region
    epochs_spawned: int = 0
    epochs_committed: int = 0
    epochs_squashed: int = 0
    squash_conflicts: int = 0        # squashes due to memory conflicts
    squash_syncs: int = 0            # squashes due to early loop exits
    squash_packing: int = 0          # squashes due to IV mispredictions
    ssb_stall_cycles: int = 0
    packed_iterations: int = 0
    packing_detaches: int = 0


@dataclass(slots=True)
class SimStats:
    """Whole-run statistics for one timing simulation."""

    cycles: int = 0
    # Instructions committed by the architectural threadlet (== program's
    # dynamic instruction count at the end of the run).
    arch_instructions: int = 0
    # Instructions committed to speculative threadlets whose threadlet later
    # committed (successful speculation) or was squashed (failed).
    spec_committed_instructions: int = 0
    failed_spec_instructions: int = 0
    issued_instructions: int = 0
    dispatched_instructions: int = 0
    fetched_instructions: int = 0

    # Branch prediction.
    branches: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0

    # Memory system.
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    ssb_reads: int = 0
    ssb_writes: int = 0
    ssb_forwards: int = 0            # reads served from an older slice

    # Threadlets.
    threadlets_spawned: int = 0
    threadlets_committed: int = 0
    threadlets_squashed: int = 0
    squash_conflicts: int = 0
    squash_syncs: int = 0
    squash_packing: int = 0
    squash_overflow: int = 0
    packing_factor_sum: int = 0
    packing_events: int = 0
    max_packing_factor: int = 1
    # Pending packed-iteration skips cancelled because their epoch left
    # the region at SYNC before consuming them (each would otherwise have
    # swallowed a reattach of a *later* region — the cross-region state
    # divergence fixed in engine schema v2).
    packing_skips_cancelled: int = 0

    # Histogram: cycles with exactly k threadlets active (fig 7).
    active_threadlet_cycles: Dict[int, int] = field(default_factory=dict)
    # Per-region stats (loop speedups, table 2 attribution).
    regions: Dict[str, RegionStats] = field(default_factory=dict)

    def region(self, label: str) -> RegionStats:
        stats = self.regions.get(label)
        if stats is None:
            stats = RegionStats(label)
            self.regions[label] = stats
        return stats

    def note_active_threadlets(self, count: int) -> None:
        self.active_threadlet_cycles[count] = (
            self.active_threadlet_cycles.get(count, 0) + 1
        )

    # -- derived metrics ------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Architectural instructions per cycle."""
        return self.arch_instructions / self.cycles if self.cycles else 0.0

    @property
    def total_committed_ipc(self) -> float:
        """All commit activity (architectural + speculative + failed)."""
        total = (
            self.arch_instructions
            + self.spec_committed_instructions
            + self.failed_spec_instructions
        )
        return total / self.cycles if self.cycles else 0.0

    def commit_utilization(self, commit_width: int) -> float:
        """Fraction of commit bandwidth used (figure 1's second metric)."""
        if self.cycles == 0 or commit_width == 0:
            return 0.0
        return self.arch_instructions / (self.cycles * commit_width)

    @property
    def branch_mpki(self) -> float:
        if self.arch_instructions == 0:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.arch_instructions

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def mean_packing_factor(self) -> float:
        if self.packing_events == 0:
            return 1.0
        return self.packing_factor_sum / self.packing_events

    def threadlet_utilization(self, at_least: int) -> float:
        """Fraction of cycles with >= ``at_least`` threadlets active."""
        if self.cycles == 0:
            return 0.0
        busy = sum(
            c for k, c in self.active_threadlet_cycles.items() if k >= at_least
        )
        return busy / self.cycles

    def summary(self) -> str:
        lines = [
            f"cycles                 {self.cycles}",
            f"arch instructions      {self.arch_instructions}",
            f"IPC                    {self.ipc:.3f}",
            f"spec committed         {self.spec_committed_instructions}",
            f"failed speculation     {self.failed_spec_instructions}",
            f"branches/mispredicts   {self.branches}/{self.branch_mispredicts}",
            f"L1D accesses/misses    {self.l1d_accesses}/{self.l1d_misses}",
            f"threadlets spawned     {self.threadlets_spawned}",
            f"threadlets committed   {self.threadlets_committed}",
            f"threadlets squashed    {self.threadlets_squashed}",
        ]
        return "\n".join(lines)
