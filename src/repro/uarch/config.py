"""Simulator configuration, following table 1 of the paper.

Three dataclasses compose a full machine description:

* :class:`CoreConfig` — the out-of-order pipeline (widths, windows, FUs,
  branch prediction) shared by the baseline and LoopFrog models.
* :class:`MemoryConfig` — L1I/L1D/L2/DRAM parameters.
* :class:`LoopFrogConfig` — threadlet count, SSB geometry, conflict-detector
  granularity and iteration-packing knobs.

``default_core()`` etc. return the paper's aggressive 8-wide configuration;
the figure-1 experiment builds narrower/wider variants with
:func:`scaled_core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..errors import ConfigError
from ..isa.instructions import OpClass


@dataclass
class CoreConfig:
    """Pipeline parameters (paper table 1, "Core")."""

    name: str = "8wide"
    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_size: int = 1024
    iq_size: int = 384
    lq_size: int = 256
    sq_size: int = 256
    fetch_queue_size: int = 32  # per threadlet (duplicated)
    int_phys_regs: int = 1024
    fp_phys_regs: int = 768
    # Front-end redirect penalty on a branch mispredict (pipeline depth).
    mispredict_penalty: int = 10
    # Extra bubble when a taken branch misses in the BTB.
    btb_miss_penalty: int = 2
    # Functional-unit issue ports per op class and per-op latencies.
    fu_ports: Dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT_ALU: 9,      # 7 ALU+Branch plus 2 ALU+Mul+Div
        OpClass.BRANCH: 7,
        OpClass.INT_MUL: 2,
        OpClass.INT_DIV: 2,
        OpClass.FP_ADD: 4,
        OpClass.FP_MUL: 4,
        OpClass.FP_DIV: 2,
        OpClass.FP_SQRT: 2,
        OpClass.MEM_READ: 4,
        OpClass.MEM_WRITE: 2,
        OpClass.HINT: 8,
        OpClass.SYSTEM: 8,
    })
    fu_latency: Dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT_ALU: 1,
        OpClass.BRANCH: 1,
        OpClass.INT_MUL: 3,
        OpClass.INT_DIV: 12,
        OpClass.FP_ADD: 3,
        OpClass.FP_MUL: 4,
        OpClass.FP_DIV: 12,
        OpClass.FP_SQRT: 16,
        OpClass.MEM_READ: 1,   # address-generation; cache adds the rest
        OpClass.MEM_WRITE: 1,
        OpClass.HINT: 1,
        OpClass.SYSTEM: 1,
    })
    # Branch predictor (TAGE-lite).
    bp_table_bits: int = 12       # entries per tagged table = 2**bits
    bp_num_tables: int = 6
    bp_history_lengths: tuple = (4, 8, 16, 32, 64, 128)
    btb_entries: int = 4096
    ras_entries: int = 48
    loop_predictor_entries: int = 256

    def validate(self) -> None:
        if self.fetch_width <= 0 or self.commit_width <= 0:
            raise ConfigError("pipeline widths must be positive")
        if self.rob_size < self.dispatch_width:
            raise ConfigError("ROB smaller than dispatch width")
        if len(self.bp_history_lengths) < self.bp_num_tables:
            raise ConfigError("not enough TAGE history lengths configured")


@dataclass
class MemoryConfig:
    """Cache hierarchy parameters (paper table 1, "Memory System")."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1i_latency: int = 1
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    l1d_latency: int = 2
    l1d_mshrs: int = 10
    l2_size: int = 4 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 11
    l2_mshrs: int = 32
    dram_latency: int = 240  # ~60 ns at 4 GHz
    line_size: int = 64
    l1_prefetch_degree: int = 2
    l2_prefetch_degree: int = 8

    def validate(self) -> None:
        for size, assoc, what in (
            (self.l1d_size, self.l1d_assoc, "L1D"),
            (self.l1i_size, self.l1i_assoc, "L1I"),
            (self.l2_size, self.l2_assoc, "L2"),
        ):
            sets = size // (assoc * self.line_size)
            if sets <= 0 or sets & (sets - 1):
                raise ConfigError(f"{what}: set count must be a power of two")


@dataclass
class LoopFrogConfig:
    """LoopFrog extensions (paper table 1, "SSB", and sections 4.1-4.3)."""

    enabled: bool = True
    num_threadlets: int = 4
    # SSB geometry.
    ssb_total_bytes: int = 8 * 1024   # across all slices
    ssb_line_bytes: int = 32
    granule_bytes: int = 4
    ssb_associativity: int = 0        # 0 = not modelled (fully associative)
    ssb_victim_entries: int = 0       # small shared victim buffer
    ssb_read_latency: int = 3         # includes the parallel L1D lookup
    ssb_write_latency: int = 1
    conflict_check_latency: int = 4   # added before threadlet commit
    # SSB flush: lines drained per cycle when a slice becomes architectural.
    flush_lines_per_cycle: int = 1
    # Conflict-detector sets: exact by default (the paper idealises its
    # Bloom filters too); enable to model Swarm-style filters (section 4.2).
    use_bloom_filters: bool = False
    bloom_bits: int = 4096
    bloom_hashes: int = 4
    # Iteration packing (section 4.3).
    packing_enabled: bool = True
    packing_target_size: int = 0      # 0 = use the ROB size (paper's choice)
    packing_max_factor: int = 32
    packing_train_epochs: int = 3
    packing_ema_alpha: float = 0.5
    stride_confidence_max: int = 7
    stride_confidence_threshold: int = 4

    @property
    def slice_bytes(self) -> int:
        return self.ssb_total_bytes // max(1, self.num_threadlets)

    @property
    def slice_lines(self) -> int:
        return max(1, self.slice_bytes // self.ssb_line_bytes)

    def validate(self) -> None:
        if self.num_threadlets < 1:
            raise ConfigError("need at least one threadlet context")
        if self.ssb_line_bytes % self.granule_bytes != 0:
            raise ConfigError("line size must be a multiple of the granule size")
        if self.granule_bytes not in (1, 2, 4, 8, 16, 32, 64):
            raise ConfigError(f"unsupported granule size {self.granule_bytes}")


@dataclass
class MachineConfig:
    """A complete machine: core + memory + LoopFrog extensions."""

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    loopfrog: LoopFrogConfig = field(default_factory=LoopFrogConfig)

    def validate(self) -> None:
        self.core.validate()
        self.memory.validate()
        self.loopfrog.validate()


def default_machine() -> MachineConfig:
    """The paper's aggressive 8-wide, 4-threadlet machine (table 1)."""
    return MachineConfig()


def baseline_machine() -> MachineConfig:
    """Same pipeline with LoopFrog speculation disabled (hints are nops)."""
    machine = MachineConfig()
    machine.loopfrog = replace(machine.loopfrog, enabled=False, num_threadlets=1)
    return machine


def scaled_core(width: int, name: str = "") -> MachineConfig:
    """A machine whose front-end/back-end width is scaled to ``width``.

    Used by the figure-1 experiment to model successively wider commercial
    microarchitectures.  Window structures scale linearly with width around
    the 8-wide reference point.
    """
    if width < 1:
        raise ConfigError("width must be >= 1")
    scale = width / 8.0
    machine = MachineConfig()
    core = machine.core
    core.name = name or f"{width}wide"
    core.fetch_width = width
    core.dispatch_width = width
    core.issue_width = width
    core.commit_width = width
    core.rob_size = max(width * 2, int(core.rob_size * scale))
    core.iq_size = max(width, int(core.iq_size * scale))
    core.lq_size = max(width, int(core.lq_size * scale))
    core.sq_size = max(width, int(core.sq_size * scale))
    for cls in core.fu_ports:
        core.fu_ports[cls] = max(1, round(core.fu_ports[cls] * scale))
    machine.loopfrog = replace(machine.loopfrog, enabled=False, num_threadlets=1)
    return machine
