"""External-observer coherence model (paper section 4.1.4).

The main experiments run a single core, but LoopFrog's deployability
argument rests on the SSB hiding speculation from the memory system: other
cores must never observe speculative state, and a remote request that
cannot be reconciled with a threadlet's read/write sets must squash that
threadlet.

:class:`CoherenceAgent` models the other side of the interconnect as an
external observer issuing line-granularity read (Shared) and
read-exclusive (Modified) requests.  It checks two properties:

* *Isolation* — a remote read only ever sees architecturally committed
  data: speculative bytes buffered in SSB slices are invisible.
* *Conflict handling* — a remote write that hits a speculative threadlet's
  read or write set squashes it (and everything younger); a remote read
  that hits a write set does the same (the line was held in Modified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .core import Engine
from .threadlet import Threadlet


@dataclass
class SnoopResult:
    """Outcome of one remote coherence request."""

    data: Optional[bytes]          # line data for reads (committed state only)
    squashed_threadlets: List[int] = field(default_factory=list)


class CoherenceAgent:
    """Issues remote coherence traffic into a running :class:`Engine`."""

    def __init__(self, engine: Engine, line_size: int = 64):
        self.engine = engine
        self.line_size = line_size

    def _spec_threadlets(self) -> List[Threadlet]:
        return [t for t in self.engine.order if not t.is_arch]

    def _squash_on_conflict(self, addr: int, size: int, is_write: bool) -> List[int]:
        """Find the oldest conflicting speculative threadlet and squash it
        (cascading), per section 4.1.4."""
        conflicts = self.engine.conflicts
        for t in self._spec_threadlets():
            hit_write = conflicts.write_set_intersects(t.slot, addr, size)
            hit_read = is_write and conflicts.read_set_intersects(t.slot, addr, size)
            if hit_write or hit_read:
                victims = [x.slot for x in self.engine.order
                           if x.epoch >= t.epoch and not x.is_arch]
                self.engine._squash_restart(t, reason="conflict")
                return victims
        return []

    def remote_read(self, addr: int) -> SnoopResult:
        """A remote core requests the line in Shared state."""
        line_start = (addr // self.line_size) * self.line_size
        squashed = self._squash_on_conflict(line_start, self.line_size,
                                            is_write=False)
        data = bytes(
            self.engine.memory.load_byte(line_start + i)
            for i in range(self.line_size)
        )
        return SnoopResult(data=data, squashed_threadlets=squashed)

    def remote_write(self, addr: int, data: bytes) -> SnoopResult:
        """A remote core requests the line in Modified state and writes it."""
        line_start = (addr // self.line_size) * self.line_size
        squashed = self._squash_on_conflict(line_start, self.line_size,
                                            is_write=True)
        for i, b in enumerate(data[: self.line_size]):
            self.engine.memory.store_byte(line_start + i, b)
        return SnoopResult(data=None, squashed_threadlets=squashed)

    def speculation_in_flight(self, addr: int, size: int) -> bool:
        """True if any speculative threadlet currently buffers a byte of
        [addr, addr+size) in its SSB slice.  Used by tests to demonstrate
        isolation: even when this is True, :meth:`remote_read` returns only
        committed memory."""
        for t in self._spec_threadlets():
            sl = self.engine.ssb.slice(t.slot)
            if any(sl.read_byte(addr + i) is not None for i in range(size)):
                return True
        return False
