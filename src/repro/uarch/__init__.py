"""Microarchitecture models: functional executor, baseline OoO core, and
the LoopFrog extensions (threadlets, SSB, conflict detection, packing)."""

from .config import (
    CoreConfig,
    LoopFrogConfig,
    MachineConfig,
    MemoryConfig,
    baseline_machine,
    default_machine,
    scaled_core,
)
from .executor import ExecResult, Executor, RunResult, execute_one, run_program
from .loopfrog_core import (
    BaselineCore,
    LoopFrogCore,
    SimulationResult,
    run_pair,
)
from .memory_state import SparseMemory
from .statistics import RegionStats, SimStats

__all__ = [
    "CoreConfig",
    "LoopFrogConfig",
    "MachineConfig",
    "MemoryConfig",
    "baseline_machine",
    "default_machine",
    "scaled_core",
    "ExecResult",
    "Executor",
    "RunResult",
    "execute_one",
    "run_program",
    "BaselineCore",
    "LoopFrogCore",
    "SimulationResult",
    "run_pair",
    "SparseMemory",
    "RegionStats",
    "SimStats",
]
