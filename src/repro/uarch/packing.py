"""Iteration packing (paper section 4.3).

Three cooperating predictors control how many loop iterations are packed
into one epoch:

1. an exponential moving average of epoch sizes (``S ← αS + (1-α)I``) that
   picks the smallest packing factor ``P`` with ``P × S`` above the target
   (the ROB size, per the paper);
2. an induction-variable detector that watches which registers change
   between consecutive detaches of the same region; and
3. a strided value predictor per (region, register) with a saturating
   confidence counter (small reward on success, large penalty on failure).

Packing is attempted only when *every* changing register has a confident
stride.  The caller verifies the predicted start state when the predecessor
halts and squashes (or patches) the successor on a mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs import metrics as _metrics
from .config import LoopFrogConfig

_SUCCESS_REWARD = 1
_FAILURE_PENALTY = 4


@dataclass
class StrideEntry:
    """Strided value predictor state for one register in one region."""

    last_value: float = 0.0
    stride: float = 0.0
    confidence: int = 0
    seen: int = 0

    def observe(self, value: float, conf_max: int, iterations: int = 1) -> None:
        """Record the value at a detach, ``iterations`` loop iterations
        after the previous observation (more than 1 under packing)."""
        if self.seen == 0:
            self.last_value = value
            self.seen = 1
            return
        delta = value - self.last_value
        if isinstance(delta, int) and iterations > 1 and delta % iterations != 0:
            # Not expressible as a constant per-iteration integer stride.
            self.confidence = max(0, self.confidence - _FAILURE_PENALTY)
            self.last_value = value
            self.seen += 1
            return
        stride = delta / iterations if iterations > 1 else delta
        if isinstance(delta, int) and iterations > 1:
            stride = delta // iterations
        if self.seen >= 2 and stride == self.stride:
            self.confidence = min(conf_max, self.confidence + _SUCCESS_REWARD)
        else:
            self.confidence = max(0, self.confidence - _FAILURE_PENALTY)
            if self.confidence == 0:
                # Reset base and stride when confidence bottoms out.
                self.stride = stride
        if self.seen == 1:
            self.stride = stride
        self.last_value = value
        self.seen += 1

    def predict(self, iterations_ahead: int) -> float:
        return self.last_value + self.stride * iterations_ahead


@dataclass
class PackingDecision:
    """What the packer decided at one detach."""

    factor: int  # 1 = no packing
    predicted_regs: Dict[str, float] = field(default_factory=dict)


class RegionPackingState:
    """All packing state for one parallel region (loop)."""

    def __init__(self, region: int, config: LoopFrogConfig):
        self.region = region
        self.config = config
        self.ema_size: float = 0.0
        self.epochs_seen = 0
        self.strides: Dict[str, StrideEntry] = {}
        self.changing_regs: set = set()
        # Registers epochs read before writing: the paper's "new value is
        # consumed in a later iteration" test.  Only changing registers
        # that are *consumed* need confident predictions; changing registers
        # nobody consumes are dead body temporaries.
        self.consumed_regs: set = set()
        self.last_snapshot: Optional[Dict[str, float]] = None
        self.unpackable = False
        self.misprediction_count = 0
        # Engine bookkeeping: which (epoch, detach-sequence) was last
        # observed, and what packing factor that detach chose (the
        # iteration distance to the next observation).
        self.last_observed_key = (-1, -1)
        self.last_factor = 1

    # -- training ---------------------------------------------------------------

    def observe_detach(
        self, reg_snapshot: Dict[str, float], iterations: int = 1
    ) -> None:
        """Called at every detach of this region with the register state.

        ``iterations`` is the loop-iteration distance since the previous
        observation (the previous epoch's packing factor).
        """
        if self.last_snapshot is not None:
            for reg, value in reg_snapshot.items():
                if value != self.last_snapshot.get(reg, value):
                    self.changing_regs.add(reg)
        for reg in self.changing_regs:
            entry = self.strides.setdefault(reg, StrideEntry())
            entry.observe(
                reg_snapshot.get(reg, 0.0),
                self.config.stride_confidence_max,
                iterations,
            )
        self.last_snapshot = dict(reg_snapshot)

    def observe_epoch_size(self, instructions: int) -> None:
        alpha = self.config.packing_ema_alpha
        if self.epochs_seen == 0:
            self.ema_size = float(instructions)
        else:
            self.ema_size = alpha * self.ema_size + (1 - alpha) * instructions
        self.epochs_seen += 1

    def note_consumed(self, regs) -> None:
        """Record registers an epoch read before writing (its live inputs)."""
        self.consumed_regs.update(regs)

    def note_misprediction(self) -> None:
        """Large penalty after a packing-caused squash; regions that keep
        mispredicting give up on packing entirely (the paper notes the
        microarchitecture "may choose to omit" packing per loop)."""
        self.misprediction_count += 1
        if self.misprediction_count >= 4:
            self.unpackable = True
        for entry in self.strides.values():
            entry.confidence = max(0, entry.confidence - _FAILURE_PENALTY)

    # -- decision ----------------------------------------------------------------

    def decide(self, rob_size: int) -> PackingDecision:
        """Packing decision for the detach that was just observed."""
        config = self.config
        if (
            not config.packing_enabled
            or self.unpackable
            or self.epochs_seen < config.packing_train_epochs
            or self.ema_size <= 0
        ):
            return PackingDecision(factor=1)
        threshold = config.stride_confidence_threshold
        # Induction variables: registers that change between iterations AND
        # whose values later iterations consume (paper's IV definition).
        ivs = self.changing_regs & self.consumed_regs
        if not ivs:
            return PackingDecision(factor=1)
        for reg in ivs:
            entry = self.strides.get(reg)
            if entry is None or entry.confidence < threshold:
                return PackingDecision(factor=1)
        target = config.packing_target_size or rob_size
        factor = 1
        while factor * self.ema_size <= target and factor < config.packing_max_factor:
            factor += 1
        if factor < 2:
            return PackingDecision(factor=1)
        predicted = {reg: self.strides[reg].predict(factor - 1) for reg in ivs}
        return PackingDecision(factor=factor, predicted_regs=predicted)


class IterationPacker:
    """Per-region packing state, owned by the LoopFrog engine."""

    def __init__(self, config: LoopFrogConfig):
        self.config = config
        self.regions: Dict[int, RegionPackingState] = {}

    def region(self, region_id: int) -> RegionPackingState:
        state = self.regions.get(region_id)
        if state is None:
            state = RegionPackingState(region_id, self.config)
            self.regions[region_id] = state
        return state


# ---------------------------------------------------------------------------
# Metrics catalog for iteration packing (section 4.3).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("uarch.packing.squash_packing", _metrics.COUNTER,
                        "uarch.packing",
                        "Epoch squashes caused by IV mispredictions",
                        unit="epochs", source="squash_packing"),
    _metrics.MetricSpec("uarch.packing.events", _metrics.COUNTER,
                        "uarch.packing",
                        "Detaches spawned with a packing factor > 1",
                        unit="epochs", source="packing_events"),
    _metrics.MetricSpec("uarch.packing.factor_sum", _metrics.COUNTER,
                        "uarch.packing",
                        "Sum of packing factors over all packed detaches",
                        unit="iterations", source="packing_factor_sum"),
    _metrics.MetricSpec("uarch.packing.skips_cancelled", _metrics.COUNTER,
                        "uarch.packing",
                        "Pending packed-iteration skips cancelled at an "
                        "early region exit (SYNC before the skips were "
                        "consumed)",
                        unit="iterations", source="packing_skips_cancelled"),
    _metrics.MetricSpec("uarch.packing.max_factor", _metrics.GAUGE,
                        "uarch.packing",
                        "Largest packing factor used in the run",
                        unit="iterations", source="max_packing_factor"),
    _metrics.MetricSpec("uarch.packing.mean_factor", _metrics.GAUGE,
                        "uarch.packing",
                        "Mean packing factor over packed detaches",
                        derive=lambda s: s.mean_packing_factor),
)
