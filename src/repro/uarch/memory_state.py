"""Byte-addressable sparse memory used by all functional models.

The SSB tracks speculative state at *byte granule* granularity (paper
section 4.1.1), so the functional model is byte addressed too.  Values are
stored little-endian.  Floating-point data is stored as IEEE-754 doubles
(8 bytes) or singles (4 bytes) via :mod:`struct`.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Optional, Tuple

MASK64 = (1 << 64) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret ``value`` (unsigned) as a two's-complement signed integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Two's-complement encode a (possibly negative) integer."""
    return value & ((1 << bits) - 1)


def float_to_bits(value: float, size: int = 8) -> int:
    """IEEE-754 encode ``value`` into an unsigned integer of ``size`` bytes."""
    fmt = "<d" if size == 8 else "<f"
    return int.from_bytes(struct.pack(fmt, value), "little")


def bits_to_float(bits: int, size: int = 8) -> float:
    """Decode an unsigned integer of ``size`` bytes into a float."""
    fmt = "<d" if size == 8 else "<f"
    return struct.unpack(fmt, bits.to_bytes(size, "little"))[0]


class SparseMemory:
    """A sparse, byte-addressable memory.

    Unwritten bytes read as zero.  All integer values returned by
    :meth:`load` are unsigned; callers sign-extend if needed.
    """

    def __init__(self, initial: Optional[Dict[int, int]] = None):
        self._bytes: Dict[int, int] = dict(initial or {})

    def load(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as an unsigned little-endian int."""
        data = self._bytes
        value = 0
        for i in range(size):
            value |= data.get(addr + i, 0) << (8 * i)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        """Write ``size`` bytes of ``value`` (two's-complement) at ``addr``."""
        value &= (1 << (8 * size)) - 1
        data = self._bytes
        for i in range(size):
            data[addr + i] = (value >> (8 * i)) & 0xFF

    def load_bytes(self, addr: int, size: int) -> Tuple[int, ...]:
        """The raw bytes in [addr, addr+size)."""
        return tuple(self._bytes.get(addr + i, 0) for i in range(size))

    def store_byte(self, addr: int, value: int) -> None:
        self._bytes[addr] = value & 0xFF

    def load_byte(self, addr: int) -> int:
        return self._bytes.get(addr, 0)

    # Typed convenience accessors (used by workload setup and result checks).

    def load_int(self, addr: int, size: int = 8, signed: bool = True) -> int:
        value = self.load(addr, size)
        return to_signed(value, 8 * size) if signed else value

    def store_int(self, addr: int, value: int, size: int = 8) -> None:
        self.store(addr, size, to_unsigned(value, 8 * size))

    def load_float(self, addr: int, size: int = 8) -> float:
        return bits_to_float(self.load(addr, size), size)

    def store_float(self, addr: int, value: float, size: int = 8) -> None:
        self.store(addr, size, float_to_bits(value, size))

    def store_int_array(self, addr: int, values: Iterable[int], size: int = 8) -> int:
        """Lay out ``values`` contiguously from ``addr``; returns end address."""
        for v in values:
            self.store_int(addr, v, size)
            addr += size
        return addr

    def store_float_array(
        self, addr: int, values: Iterable[float], size: int = 8
    ) -> int:
        for v in values:
            self.store_float(addr, v, size)
            addr += size
        return addr

    def load_int_array(
        self, addr: int, count: int, size: int = 8, signed: bool = True
    ) -> list:
        return [self.load_int(addr + i * size, size, signed) for i in range(count)]

    def load_float_array(self, addr: int, count: int, size: int = 8) -> list:
        return [self.load_float(addr + i * size, size) for i in range(count)]

    def copy(self) -> "SparseMemory":
        return SparseMemory(self._bytes)

    def __len__(self) -> int:
        """Number of distinct bytes ever written."""
        return len(self._bytes)

    def written_addresses(self) -> Iterable[int]:
        return self._bytes.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMemory):
            return NotImplemented
        # Compare ignoring explicit zero bytes (unwritten reads as zero).
        mine = {a: b for a, b in self._bytes.items() if b}
        theirs = {a: b for a, b in other._bytes.items() if b}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("SparseMemory is unhashable")
