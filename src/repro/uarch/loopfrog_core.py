"""Public simulation API: :class:`BaselineCore` and :class:`LoopFrogCore`.

Both wrap the same :class:`~repro.uarch.core.Engine`; the baseline treats
hints as nops (speculation disabled), matching the paper's evaluation
methodology of running every binary twice (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.program import Program
from .config import MachineConfig, baseline_machine, default_machine
from .core import Engine
from .memory_state import SparseMemory
from .statistics import SimStats


@dataclass
class SimulationResult:
    """Outcome of one timing simulation."""

    stats: SimStats
    memory: SparseMemory
    registers: Dict[str, float]
    program_name: str

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return (
            self.stats.arch_instructions + self.stats.spec_committed_instructions
        )

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _CoreBase:
    def __init__(self, machine: MachineConfig):
        self.machine = machine

    def run(
        self,
        program: Program,
        memory: Optional[SparseMemory] = None,
        initial_regs: Optional[Dict[str, float]] = None,
        max_cycles: int = 50_000_000,
    ) -> SimulationResult:
        """Simulate ``program`` to completion and return the results.

        ``memory`` is mutated in place (it ends up holding the program's
        final architectural memory state).
        """
        engine = Engine(self.machine, program, memory, initial_regs)
        stats = engine.run(max_cycles=max_cycles)
        return SimulationResult(
            stats=stats,
            memory=engine.memory,
            registers=dict(engine.order[0].regs),
            program_name=program.name,
        )


class BaselineCore(_CoreBase):
    """The paper's 8-wide out-of-order baseline; hints behave as nops."""

    def __init__(self, machine: Optional[MachineConfig] = None):
        super().__init__(machine or baseline_machine())


class LoopFrogCore(_CoreBase):
    """The same core with LoopFrog threadlets, SSB and conflict detection."""

    def __init__(self, machine: Optional[MachineConfig] = None):
        machine = machine or default_machine()
        if not machine.loopfrog.enabled:
            raise ValueError(
                "LoopFrogCore needs loopfrog.enabled=True; use BaselineCore "
                "for the no-speculation configuration"
            )
        super().__init__(machine)


def run_pair(
    program: Program,
    make_memory,
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    initial_regs: Optional[Dict[str, float]] = None,
    max_cycles: int = 50_000_000,
):
    """Run baseline and LoopFrog on fresh copies of the same input.

    ``make_memory`` is a zero-argument callable producing the initial
    memory (each run needs its own copy).  Returns
    ``(baseline_result, loopfrog_result)``.
    """
    base_result = BaselineCore(baseline).run(
        program, make_memory(), initial_regs, max_cycles
    )
    frog_result = LoopFrogCore(machine).run(
        program, make_memory(), initial_regs, max_cycles
    )
    return base_result, frog_result
