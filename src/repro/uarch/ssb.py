"""The Speculative State Buffer (paper section 4.1).

The SSB sits between the memory pipe and the L1D.  It holds one *slice* per
threadlet containing the bytes that threadlet has speculatively written.
Data is organised into cache lines made of *granules* (section 4.1.1): a
line carries a valid-granule bitmask, capacity is counted in lines, and an
optional set-associative organisation with a small shared victim buffer
models the constrained geometries of section 6.6.

Reads implement the versioning logic of section 4.1.3 / figure 5: for each
granule the newest value among the reader's own slice, all older slices and
main memory is returned; younger threadlets' values are ignored.  Writes go
to the writer's slice only.  When a threadlet commits, its slice is flushed
to main memory; when it is squashed, the slice is bulk-invalidated.

Functionally the slice stores bytes; for timing, each granule remembers the
writing instruction so the pipeline can model cross-threadlet value
forwarding latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import metrics as _metrics
from .config import LoopFrogConfig
from .memory_state import SparseMemory


@dataclass(slots=True)
class SSBReadResult:
    """Outcome of a speculative read."""

    value: int                      # little-endian unsigned value
    forwarded_from: Set[int] = field(default_factory=set)  # older slice slots
    hit_own_slice: bool = False
    writers: List[object] = field(default_factory=list)  # producing instrs


class SSBSlice:
    """Per-threadlet speculative store buffer slice."""

    __slots__ = (
        "slot", "config", "data", "writers", "lines", "line_bytes",
        "granule_bytes", "capacity_lines", "num_sets", "victim_lines",
    )

    def __init__(self, slot: int, config: LoopFrogConfig):
        self.slot = slot
        self.config = config
        self.data: Dict[int, int] = {}          # byte address -> value
        self.writers: Dict[int, object] = {}    # granule id -> writing instr
        self.lines: Dict[int, int] = {}         # line addr -> valid granule mask
        self.line_bytes = config.ssb_line_bytes
        self.granule_bytes = config.granule_bytes
        self.capacity_lines = config.slice_lines
        assoc = config.ssb_associativity
        self.num_sets = 0
        if assoc:
            self.num_sets = max(1, self.capacity_lines // assoc)
        self.victim_lines: Set[int] = set()     # lines parked in victim buffer

    # -- capacity -------------------------------------------------------------

    def _can_take_line(self, line_addr: int, victim_budget: int) -> Tuple[bool, bool]:
        """(accepted, used_victim) for allocating a new line."""
        if line_addr in self.lines or line_addr in self.victim_lines:
            return True, False
        if len(self.lines) + len(self.victim_lines) >= self.capacity_lines:
            return False, False
        if self.num_sets:
            set_index = line_addr % self.num_sets
            occupancy = sum(
                1 for a in self.lines if a % self.num_sets == set_index
            )
            if occupancy >= self.config.ssb_associativity:
                if victim_budget > 0:
                    return True, True
                return False, False
        return True, False

    def write(self, addr: int, size: int, value: int, writer: object,
              victim_budget: int = 0) -> Tuple[bool, bool]:
        """Store ``size`` bytes; returns (accepted, used_victim_entry).

        Speculative writes can never be dropped (section 4.1.2), so a
        rejected write means the threadlet must stall.
        """
        # All lines touched must be allocatable before any byte is written.
        first_line = addr // self.line_bytes
        last_line = (addr + size - 1) // self.line_bytes
        used_victim = False
        budget = victim_budget
        allocations = []
        for line_addr in range(first_line, last_line + 1):
            ok, use_victim = self._can_take_line(line_addr, budget)
            if not ok:
                return False, False
            if use_victim:
                budget -= 1
                used_victim = True
            allocations.append((line_addr, use_victim))

        for line_addr, use_victim in allocations:
            if use_victim and line_addr not in self.lines:
                self.victim_lines.add(line_addr)
            elif line_addr not in self.victim_lines:
                self.lines.setdefault(line_addr, 0)

        value &= (1 << (8 * size)) - 1
        for i in range(size):
            self.data[addr + i] = (value >> (8 * i)) & 0xFF
        g0 = addr // self.granule_bytes
        g1 = (addr + size - 1) // self.granule_bytes
        for g in range(g0, g1 + 1):
            self.writers[g] = writer
            line_addr = (g * self.granule_bytes) // self.line_bytes
            if line_addr in self.lines:
                offset = (g * self.granule_bytes - line_addr * self.line_bytes) // self.granule_bytes
                self.lines[line_addr] |= 1 << offset
        return True, used_victim

    def read_byte(self, addr: int) -> Optional[int]:
        return self.data.get(addr)

    def writer_of(self, granule: int) -> Optional[object]:
        return self.writers.get(granule)

    @property
    def line_count(self) -> int:
        return len(self.lines) + len(self.victim_lines)

    def clear(self) -> None:
        """Bulk invalidation on squash (section 4.1.2)."""
        self.data.clear()
        self.writers.clear()
        self.lines.clear()
        self.victim_lines.clear()

    def flush_to(self, memory: SparseMemory) -> int:
        """Merge all buffered bytes into main memory; returns line count.

        Functionally instantaneous; the caller models drain bandwidth with
        the returned line count (section 4.1.2's per-slice counter).
        """
        lines = self.line_count
        for addr, value in self.data.items():
            memory.store_byte(addr, value)
        self.clear()
        return lines


class SpeculativeStateBuffer:
    """All slices plus the versioning read logic and S_arch bookkeeping.

    The engine tells the SSB the current age order of threadlet slots; the
    SSB itself is policy-free about threadlet lifecycle.
    """

    def __init__(self, config: LoopFrogConfig, memory: SparseMemory):
        self.config = config
        self.memory = memory
        self.slices: Dict[int, SSBSlice] = {
            slot: SSBSlice(slot, config) for slot in range(config.num_threadlets)
        }
        self.victim_capacity = config.ssb_victim_entries
        self._victim_in_use = 0

    def slice(self, slot: int) -> SSBSlice:
        return self.slices[slot]

    def write(self, slot: int, addr: int, size: int, value: int,
              writer: object) -> bool:
        """Speculative write to ``slot``'s slice; False means overflow."""
        budget = self.victim_capacity - self._victim_in_use
        accepted, used_victim = self.slices[slot].write(
            addr, size, value, writer, victim_budget=budget
        )
        if used_victim:
            self._victim_in_use += 1
        return accepted

    def read(
        self, addr: int, size: int, older_slots: Iterable[int], own_slot: int
    ) -> SSBReadResult:
        """Versioned read: newest value per granule from own slice, then
        older slices (newest first), then main memory (figure 5)."""
        search_order = [own_slot] + list(older_slots)
        # A slice can only supply bytes from granules present in its
        # writer map (write() stamps every covered granule; clear() wipes
        # both maps together), so slices with no buffered bytes — or none
        # in the read's granule range — are dropped before the per-byte
        # scan (common case: the read misses every slice and falls
        # through to main memory).
        gsize = self.config.granule_bytes
        g0 = addr // gsize
        g1 = (addr + size - 1) // gsize
        if g0 == g1:
            slices = [
                sl for sl in (self.slices[s] for s in search_order)
                if sl.data and g0 in sl.writers
            ]
        else:
            granules = range(g0, g1 + 1)
            slices = [
                sl for sl in (self.slices[s] for s in search_order)
                if sl.data and any(g in sl.writers for g in granules)
            ]
        if not slices:
            return SSBReadResult(value=self.memory.load(addr, size))
        value = 0
        forwarded: Set[int] = set()
        hit_own = False
        writers: List[object] = []
        seen_granules: Set[int] = set()
        for i in range(size):
            byte_addr = addr + i
            byte_val: Optional[int] = None
            for sl in slices:
                got = sl.data.get(byte_addr)
                if got is not None:
                    byte_val = got
                    if sl.slot == own_slot:
                        hit_own = True
                    else:
                        forwarded.add(sl.slot)
                    granule = byte_addr // gsize
                    if granule not in seen_granules:
                        seen_granules.add(granule)
                        writer = sl.writer_of(granule)
                        if writer is not None and not any(
                            writer is w for w in writers
                        ):
                            writers.append(writer)
                    break
            if byte_val is None:
                byte_val = self.memory.load_byte(byte_addr)
            value |= byte_val << (8 * i)
        return SSBReadResult(
            value=value, forwarded_from=forwarded,
            hit_own_slice=hit_own, writers=writers,
        )

    def squash(self, slot: int) -> None:
        sl = self.slices[slot]
        self._victim_in_use -= len(sl.victim_lines)
        sl.clear()

    def commit(self, slot: int) -> int:
        """Slice becomes architectural and is merged; returns flushed lines."""
        sl = self.slices[slot]
        self._victim_in_use -= len(sl.victim_lines)
        return sl.flush_to(self.memory)

    def occupancy_bytes(self, slot: int) -> int:
        return len(self.slices[slot].data)


# ---------------------------------------------------------------------------
# Metrics catalog for the SSB (collected from SimStats; the engine owns the
# counters, this module owns their declarations).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("uarch.ssb.reads", _metrics.COUNTER, "uarch.ssb",
                        "Speculative loads resolved through SSB versioning",
                        unit="accesses", source="ssb_reads"),
    _metrics.MetricSpec("uarch.ssb.writes", _metrics.COUNTER, "uarch.ssb",
                        "Speculative stores buffered into a slice",
                        unit="accesses", source="ssb_writes"),
    _metrics.MetricSpec("uarch.ssb.forwards", _metrics.COUNTER, "uarch.ssb",
                        "Reads served (at least partly) from an older "
                        "threadlet's slice",
                        unit="accesses", source="ssb_forwards"),
)
