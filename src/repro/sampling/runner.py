"""Sampled-simulation orchestration: profile, cluster, window, extrapolate.

The pipeline (docs/sampling.md) for one (program, machine) pair:

1. **Profile** (fast-forward pass 1): BBV per ``interval_length``
   instructions over the whole program.
2. **Cluster**: seed-pinned k-means picks ``k <= max_clusters``
   representative intervals and instruction-share weights.
3. **Checkpoint** (fast-forward pass 2): architectural snapshots at each
   representative's *window start* — ``warmup_intervals`` intervals
   before the representative, so the detailed engine warms up through
   real preceding work before measurement begins — plus bounded
   functional warmup history (recent data lines, branch outcomes).
4. **Windows**: the detailed :class:`~repro.uarch.core.Engine` replays
   each window from its checkpoint via :meth:`Engine.run_window`;
   windows are independent, so with ``jobs > 1`` they fan out across a
   :class:`~concurrent.futures.ProcessPoolExecutor` exactly like the
   exact runner's scheduler.
5. **Extrapolate**: weighted CPI combination with an error bound.

Sampled estimates are cached in the persistent result store under
:func:`~repro.results.digest.sampled_run_digest` — a digest dimension
disjoint from exact results by construction, so an estimate can never
shadow a detailed simulation (or vice versa).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs import metrics as _metrics
from ..obs.tracing import span as _span
from ..isa.program import Program
from ..uarch.config import MachineConfig, default_machine
from ..uarch.core import Engine
from ..uarch.memory_state import SparseMemory
from .extrapolate import SampledRunResult, WindowMeasurement, extrapolate
from .fastforward import Checkpoint, collect_checkpoints, profile_intervals
from .kmeans import cluster_intervals

# Version of the *sampling methodology*.  Part of the sampled run digest:
# bump on any change to profiling, clustering, warmup policy or
# extrapolation that can alter estimates, so stale estimates are never
# served from the store.  (The engine's own timing semantics are covered
# by ENGINE_SCHEMA_VERSION, which the digest also includes.)
SAMPLING_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SamplingConfig:
    """Tunables of the sampled-simulation methodology.

    Every field is part of the sampled run digest.  Defaults are tuned on
    the long-run suite (see docs/sampling.md for the validation data):
    intervals must be long relative to the engine's speculative *runahead*
    — threadlets complete whole future iterations before the merge credits
    them, so short windows see lumpy, unrepresentative slices — and
    windows are measured whole from a clean (unspeculated) checkpoint
    start rather than split into a timed warmup prefix, because a
    mid-speculation cut cannot be attributed cleanly to either side.
    """

    interval_length: int = 8000
    max_clusters: int = 8
    seed: int = 42
    # Programs at or below this many dynamic instructions are "too short
    # to sample" (the classic SimPoint guard): the runner simulates them
    # as ONE exact detailed run covering the whole program, reproducing
    # the continuous engine's cycle count bit-for-bit.  Sampling proper
    # only pays off once windows are much smaller than the program.
    full_detail_threshold: int = 100_000
    # Detailed warmup: how many preceding intervals to simulate (unmeasured)
    # before each representative.  The default of 0 is deliberate: the
    # engine's speculative runahead makes the warmup/measured cycle split
    # unattributable (see class docstring); microarchitectural state is
    # instead reconstructed from the functional warmup record below.
    warmup_intervals: int = 0
    # Branch-history depth recorded at each checkpoint and replayed into
    # the predictor (0 disables all warmup replay).  Cache contents are
    # reconstructed from the full last-touch record regardless.
    functional_warmup: int = 4096
    # Fast-forward instruction budget (safety net against runaway kernels).
    max_instructions: int = 500_000_000


def _window_plan(
    intervals, cluster, warmup_intervals: int
) -> List[Tuple[int, float, int, int, int]]:
    """Per representative: (interval_index, weight, window_start_icount,
    warmup_instructions, n_instructions)."""
    plan = []
    for rep, weight in zip(cluster.representatives, cluster.weights):
        start_interval = max(0, rep - warmup_intervals)
        window_start = intervals[start_interval].start_icount
        warmup = intervals[rep].start_icount - window_start
        plan.append((rep, weight, window_start, warmup, intervals[rep].length))
    return plan


def _run_window_job(payload) -> WindowMeasurement:
    """Worker-side entry point: one detailed window from a checkpoint.

    The payload is plain picklable state (the parallel path ships it to a
    worker process; the serial path calls this directly).
    """
    (machine, program, memory, regs, pc, warmup_state,
     interval_index, weight, warmup_instructions, n_instructions,
     max_cycles) = payload
    # With a recorded warmup the caches are reconstructed from last-touch
    # order (apply_warmup); the constructor's whole-working-set warming
    # models program entry and would leave mid-program windows too warm.
    engine = Engine(
        machine, program, memory, regs,
        warm_caches=warmup_state is None, initial_pc=pc,
    )
    if warmup_state is not None:
        engine.apply_warmup(warmup_state)
    window = engine.run_window(
        n_instructions,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )
    return WindowMeasurement(
        interval_index=interval_index,
        weight=weight,
        warmup_instructions=window.warmup_instructions,
        measured_instructions=window.measured_instructions,
        measured_cycles=window.measured_cycles,
        stats=window.stats,
    )


def run_program_sampled(
    program: Program,
    memory: SparseMemory,
    initial_regs: Dict[str, float],
    machine: Optional[MachineConfig] = None,
    config: Optional[SamplingConfig] = None,
    max_cycles: int = 50_000_000,
    jobs: int = 1,
) -> SampledRunResult:
    """Sampled-simulate one program; returns the extrapolated estimate.

    ``memory``/``initial_regs`` are the program-entry state (they are
    copied per pass, never mutated).  ``jobs > 1`` parallelises the
    detailed windows.
    """
    machine = machine or default_machine()
    config = config or SamplingConfig()

    with _span("sample.profile", program=program.name,
               interval_length=config.interval_length):
        start = time.perf_counter()
        intervals, total_instructions = profile_intervals(
            program, memory.copy(), initial_regs,
            config.interval_length, config.max_instructions,
        )
        profile_wall = time.perf_counter() - start
    ff_rate = total_instructions / profile_wall if profile_wall > 0 else 0.0

    if total_instructions <= config.full_detail_threshold:
        # Too short to sample (the classic SimPoint guard, see
        # docs/sampling.md): one detailed run over the whole program,
        # weight 1.  The estimate IS the detailed result — every counter
        # exact, error bound zero.
        with _span("sample.windows", windows=1, jobs=1):
            engine = Engine(machine, program, memory.copy(), initial_regs)
            stats = engine.run(max_cycles=max_cycles)
        window = WindowMeasurement(
            interval_index=0, weight=1.0, warmup_instructions=0,
            measured_instructions=total_instructions,
            measured_cycles=stats.cycles, stats=stats,
        )
        return SampledRunResult(
            stats=stats,
            estimated_cpi=(
                stats.cycles / stats.arch_instructions
                if stats.arch_instructions else 0.0
            ),
            estimated_cycles=stats.cycles,
            error_bound=0.0,
            total_instructions=total_instructions,
            num_intervals=len(intervals),
            num_clusters=1,
            interval_length=config.interval_length,
            detailed_instructions=total_instructions,
            ff_instructions_per_second=ff_rate,
            windows=[window],
        )

    with _span("sample.cluster", intervals=len(intervals)):
        cluster = cluster_intervals(intervals, config.max_clusters, config.seed)
    plan = _window_plan(intervals, cluster, config.warmup_intervals)

    with _span("sample.checkpoint", windows=len(plan)):
        checkpoints = collect_checkpoints(
            program, memory.copy(), initial_regs,
            [window_start for _, _, window_start, _, _ in plan],
            record_warmup=config.functional_warmup,
        )

    with _span("sample.windows", windows=len(plan), jobs=jobs):
        payloads = []
        for rep, weight, window_start, warmup, length in plan:
            cp: Checkpoint = checkpoints[window_start]
            payloads.append((
                machine, program, cp.engine_memory(), cp.regs, cp.pc,
                cp.warmup if config.functional_warmup > 0 else None,
                rep, weight, warmup, length, max_cycles,
            ))
        if jobs > 1 and len(payloads) > 1:
            windows: List[WindowMeasurement] = [None] * len(payloads)
            workers = min(jobs, len(payloads))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_window_job, payload): i
                    for i, payload in enumerate(payloads)
                }
                for future in as_completed(futures):
                    windows[futures[future]] = future.result()
        else:
            windows = [_run_window_job(payload) for payload in payloads]

    result = extrapolate(
        windows,
        total_instructions=total_instructions,
        num_intervals=len(intervals),
        interval_length=config.interval_length,
        ff_instructions_per_second=ff_rate,
    )
    return result


# ---------------------------------------------------------------------------
# Workload-level entry point with store caching
# ---------------------------------------------------------------------------

# In-process estimate cache, keyed by the sampled run digest (which covers
# workload content, machine config, engine schema and sampling config).
_CACHE: Dict[str, SampledRunResult] = {}


def _extra_payload(result: SampledRunResult) -> dict:
    return {
        "sampled": True,
        "sampling_schema": SAMPLING_SCHEMA_VERSION,
        "estimated_cpi": result.estimated_cpi,
        "error_bound": result.error_bound,
        "total_instructions": result.total_instructions,
        "num_intervals": result.num_intervals,
        "num_clusters": result.num_clusters,
        "interval_length": result.interval_length,
        "detailed_instructions": result.detailed_instructions,
    }


def _from_store(stats, extra: dict) -> SampledRunResult:
    fallback_cpi = (
        stats.cycles / stats.arch_instructions if stats.arch_instructions else 0.0
    )
    return SampledRunResult(
        stats=stats,
        estimated_cpi=float(extra.get("estimated_cpi", fallback_cpi)),
        estimated_cycles=stats.cycles,
        error_bound=float(extra.get("error_bound", 0.0)),
        total_instructions=int(extra.get("total_instructions", stats.arch_instructions)),
        num_intervals=int(extra.get("num_intervals", 0)),
        num_clusters=int(extra.get("num_clusters", 0)),
        interval_length=int(extra.get("interval_length", 0)),
        detailed_instructions=int(extra.get("detailed_instructions", 0)),
        cached=True,
    )


def run_workload_sampled(
    workload,
    machine: Optional[MachineConfig] = None,
    config: Optional[SamplingConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> SampledRunResult:
    """Sampled-simulate one workload (cached like the exact runner).

    The cache key is :func:`sampled_run_digest` — disjoint from exact run
    digests, so sampled and exact results never collide in either cache
    layer or the persistent store.
    """
    from ..experiments.runner import default_jobs
    from ..results.digest import sampled_run_digest
    from ..results.store import get_default_store

    machine = machine or default_machine()
    config = config or SamplingConfig()
    if jobs is None:
        jobs = default_jobs()

    digest = None
    store = None
    if use_cache:
        digest = sampled_run_digest(workload, machine, config)
        cached = _CACHE.get(digest)
        if cached is not None:
            return cached
        store = get_default_store()
        if store is not None:
            stats = store.load(digest)
            if stats is not None:
                result = _from_store(stats, store.load_extra(digest) or {})
                _CACHE[digest] = result
                return result

    memory, regs = workload.fresh_input()
    result = run_program_sampled(
        workload.program, memory, regs, machine, config,
        max_cycles=workload.max_cycles, jobs=jobs,
    )
    if use_cache:
        _CACHE[digest] = result
        if store is not None:
            from ..results.digest import machine_digest

            store.save(
                digest, result.stats,
                workload=workload.name,
                machine=machine_digest(machine)[:12],
                extra=_extra_payload(result),
            )
    return result


def clear_cache() -> None:
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Metrics catalog for the sampling subsystem (collected off
# SampledRunResult; see docs/observability.md).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec(
        "sampling.total_instructions", _metrics.COUNTER, "sampling",
        "Dynamic instructions in the fast-forwarded whole program",
        unit="instructions", source="total_instructions"),
    _metrics.MetricSpec(
        "sampling.intervals", _metrics.GAUGE, "sampling",
        "Profiled fixed-length instruction intervals",
        unit="intervals", source="num_intervals"),
    _metrics.MetricSpec(
        "sampling.clusters", _metrics.GAUGE, "sampling",
        "k-means clusters (= detailed windows simulated)",
        unit="clusters", source="num_clusters"),
    _metrics.MetricSpec(
        "sampling.detailed_instructions", _metrics.COUNTER, "sampling",
        "Instructions simulated in detail (warmup + measured windows)",
        unit="instructions", source="detailed_instructions"),
    _metrics.MetricSpec(
        "sampling.detailed_fraction", _metrics.GAUGE, "sampling",
        "Detailed instructions / total instructions (sampling savings)",
        derive=lambda r: r.detailed_fraction),
    _metrics.MetricSpec(
        "sampling.estimated_cpi", _metrics.GAUGE, "sampling",
        "Extrapolated whole-program cycles per instruction",
        unit="cpi", source="estimated_cpi"),
    _metrics.MetricSpec(
        "sampling.error_bound", _metrics.GAUGE, "sampling",
        "Relative 95% half-width of the CPI estimate (cluster dispersion)",
        source="error_bound"),
    _metrics.MetricSpec(
        "sampling.fast_forward_rate", _metrics.GAUGE, "sampling",
        "Fast-forward profiling throughput",
        unit="instr/s", source="ff_instructions_per_second"),
)
