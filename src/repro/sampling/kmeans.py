"""Seed-pinned k-means (k-means++ init) over interval BBVs.

Pure stdlib and fully deterministic: the same vectors and seed produce the
same clusters, representatives and weights in any process on any platform
— a hard requirement, because the representative set feeds the sampled
result digest (see docs/sampling.md).  Determinism is guaranteed by

* a private ``random.Random(seed)`` (never the global RNG),
* stable tie-breaking everywhere (lowest index wins), and
* arithmetic on plain floats in fixed iteration order.

Vectors are L1-normalised before clustering, so intervals cluster by the
*distribution* of work over basic blocks, not by raw volume — the standard
SimPoint frequency-vector treatment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .fastforward import Interval


def _normalize(vec: Sequence[float]) -> Tuple[float, ...]:
    total = float(sum(vec))
    if total <= 0.0:
        return tuple(0.0 for _ in vec)
    return tuple(v / total for v in vec)


def _sq_dist(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def _nearest(point, centroids) -> Tuple[int, float]:
    """Index and squared distance of the closest centroid (ties: lowest)."""
    best_i = 0
    best_d = _sq_dist(point, centroids[0])
    for i in range(1, len(centroids)):
        # Early abandon: bail as soon as the partial sum exceeds the best.
        d = 0.0
        for x, y in zip(point, centroids[i]):
            d += (x - y) * (x - y)
            if d >= best_d:
                break
        if d < best_d:
            best_i, best_d = i, d
    return best_i, best_d


def _kmeanspp_init(points, k: int, rng: random.Random) -> List[int]:
    """k-means++ seeding: indices of the initial centroids."""
    chosen = [rng.randrange(len(points))]
    dists = [_sq_dist(p, points[chosen[0]]) for p in points]
    while len(chosen) < k:
        total = sum(dists)
        if total <= 0.0:
            # All remaining points coincide with a centroid; take the
            # first unchosen index for determinism.
            for i in range(len(points)):
                if i not in chosen:
                    chosen.append(i)
                    break
            continue
        r = rng.random() * total
        acc = 0.0
        pick = len(points) - 1
        for i, d in enumerate(dists):
            acc += d
            if acc >= r:
                pick = i
                break
        chosen.append(pick)
        new_c = points[pick]
        for i, p in enumerate(points):
            d = _sq_dist(p, new_c)
            if d < dists[i]:
                dists[i] = d
    return chosen


def kmeans(
    points: Sequence[Sequence[float]],
    k: int,
    seed: int,
    max_iters: int = 100,
) -> Tuple[List[int], List[Tuple[float, ...]]]:
    """Cluster ``points`` into ``k`` groups; returns (assignments, centroids).

    Deterministic for a given (points, k, seed).  Empty clusters are
    re-seeded with the point farthest from its current centroid.
    """
    n = len(points)
    if n == 0:
        return [], []
    k = max(1, min(k, n))
    rng = random.Random(seed)
    centroids = [tuple(points[i]) for i in _kmeanspp_init(points, k, rng)]
    assignments = [-1] * n
    for _ in range(max_iters):
        new_assign = [_nearest(p, centroids)[0] for p in points]
        if new_assign == assignments:
            break
        assignments = new_assign
        # Recompute centroids as member means.
        dim = len(points[0])
        sums = [[0.0] * dim for _ in range(k)]
        counts = [0] * k
        for idx, p in enumerate(points):
            c = assignments[idx]
            counts[c] += 1
            row = sums[c]
            for j, v in enumerate(p):
                row[j] += v
        for c in range(k):
            if counts[c] > 0:
                centroids[c] = tuple(v / counts[c] for v in sums[c])
            else:
                # Re-seed an empty cluster deterministically: the point
                # farthest from its assigned centroid (lowest index on ties).
                far_i, far_d = 0, -1.0
                for idx, p in enumerate(points):
                    d = _sq_dist(p, centroids[assignments[idx]])
                    if d > far_d:
                        far_i, far_d = idx, d
                centroids[c] = tuple(points[far_i])
    return assignments, centroids


@dataclass(frozen=True)
class ClusterResult:
    """Representative intervals and weights for one profiled run."""

    k: int
    assignments: Tuple[int, ...]        # interval index -> cluster id
    representatives: Tuple[int, ...]    # cluster id -> interval index
    weights: Tuple[float, ...]          # cluster id -> instruction share


def cluster_intervals(
    intervals: Sequence[Interval],
    max_clusters: int,
    seed: int,
) -> ClusterResult:
    """Pick representative intervals: cluster L1-normalised BBVs, then take
    the member closest to each centroid (ties: lowest interval index).

    Weights are *instruction* shares — a cluster holding 30% of the dynamic
    instructions contributes 30% of the extrapolated cycles — so short tail
    intervals are weighted correctly.
    """
    if not intervals:
        raise ValueError("no intervals to cluster")
    points = [_normalize(iv.bbv) for iv in intervals]
    # Cluster over *unique* vectors: steady-state loops emit long runs of
    # identical BBVs, which plain k-means would both pay for (every
    # duplicate scanned every iteration) and churn on (massive ties feed
    # the empty-cluster reseeding).  Assignments fan back out afterwards.
    uniq_index: dict = {}
    uniq_points: List[Tuple[float, ...]] = []
    point_uid: List[int] = []
    for p in points:
        u = uniq_index.get(p)
        if u is None:
            u = len(uniq_points)
            uniq_index[p] = u
            uniq_points.append(p)
        point_uid.append(u)
    k = max(1, min(max_clusters, len(uniq_points)))
    uassign, centroids = kmeans(uniq_points, k, seed)
    assignments = [uassign[u] for u in point_uid]
    total_instructions = sum(iv.length for iv in intervals)
    representatives: List[int] = []
    weights: List[float] = []
    kept_assign = list(assignments)
    # Drop empty clusters (possible when k-means collapses duplicates).
    live = sorted({c for c in assignments})
    remap = {c: i for i, c in enumerate(live)}
    kept_assign = [remap[c] for c in assignments]
    for c in live:
        members = [i for i, a in enumerate(assignments) if a == c]
        best = members[0]
        best_d = _sq_dist(points[best], centroids[c])
        for i in members[1:]:
            d = _sq_dist(points[i], centroids[c])
            if d < best_d:
                best, best_d = i, d
        representatives.append(best)
        weights.append(
            sum(intervals[i].length for i in members) / total_instructions
        )
    return ClusterResult(
        k=len(live),
        assignments=tuple(kept_assign),
        representatives=tuple(representatives),
        weights=tuple(weights),
    )
