"""Fast-forward functional executor: closure-compiled architectural interp.

Reaching interesting program regions of long workloads needs orders of
magnitude more throughput than detailed simulation (BENCH_engine.json
has the current ratio; the detailed engine's own fast path —
:mod:`repro.uarch.fastpath`, which borrows this module's
closure-compilation technique — narrows but nowhere near closes the
gap).  This module trades the generality of
:func:`repro.uarch.executor.execute_one` for speed while keeping its
architectural semantics bit-exact:

* every static instruction is compiled once into a specialised closure —
  operand register names, immediates, masks and the static next-pc are
  bound as constants at compile time, so the hot loop is just
  ``pc = handlers[pc](regs, load, store)``;
* no :class:`~repro.uarch.executor.ExecResult` allocation, no per-step
  statistics, no timing model;
* sign-extension/wrapping arithmetic is inlined (same formulas as
  ``memory_state.to_signed``/``to_unsigned``).

On top of the raw interpreter this module provides the sampling
infrastructure: basic-block-vector (BBV) interval profiling,
architectural checkpoints, and bounded functional-warmup recording
(recent data addresses + branch outcomes) for replay into the detailed
engine's caches and branch predictor.

A differential test (``tests/test_sampling_fastforward.py``) pins the
executor against the golden :class:`~repro.uarch.executor.Executor` on
seeded random programs: same final registers, memory and instruction
count.
"""

from __future__ import annotations

import math
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from ..isa.registers import initial_register_file
from ..uarch.memory_state import (
    MASK64,
    SparseMemory,
    bits_to_float,
    float_to_bits,
)

_SIGN64 = 1 << 63
_WRAP64 = 1 << 64


class _Halt(Exception):
    """Raised by the HALT closure; carries the halting pc."""

    def __init__(self, pc: int):
        self.pc = pc


# ---------------------------------------------------------------------------
# Basic blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BasicBlocks:
    """Static basic-block structure of a program."""

    leaders: Tuple[int, ...]           # block start pcs, ascending
    block_of_pc: Tuple[int, ...]       # pc -> block index
    block_lengths: Tuple[int, ...]     # block index -> instruction count
    block_ends: Tuple[int, ...]        # block index -> last pc of the block


def basic_blocks(program: Program) -> BasicBlocks:
    """Compute basic blocks: leaders are the entry pc, branch targets, and
    fall-through successors of branches and ``halt``.

    Control only leaves a block at its last instruction (branches create a
    leader right after themselves), so counting executions at block *ends*
    counts whole-block executions.
    """
    instrs = program.instructions
    n = len(instrs)
    leaders = {0}
    for i, instr in enumerate(instrs):
        if instr.is_branch:
            if instr.target_index is not None:
                leaders.add(instr.target_index)
            if i + 1 < n:
                leaders.add(i + 1)
        elif instr.opcode is Opcode.HALT and i + 1 < n:
            leaders.add(i + 1)
    ordered = sorted(leaders)
    block_of_pc = [0] * n
    block = -1
    leader_set = leaders
    for pc in range(n):
        if pc in leader_set:
            block += 1
        block_of_pc[pc] = block
    lengths = []
    ends = []
    for bi, start in enumerate(ordered):
        end = (ordered[bi + 1] - 1) if bi + 1 < len(ordered) else n - 1
        lengths.append(end - start + 1)
        ends.append(end)
    return BasicBlocks(
        leaders=tuple(ordered),
        block_of_pc=tuple(block_of_pc),
        block_lengths=tuple(lengths),
        block_ends=tuple(ends),
    )


# ---------------------------------------------------------------------------
# Warmup recording and checkpoints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarmupState:
    """Functional history recorded at a checkpoint, for timing warmup.

    ``mem_addresses`` is the *last-touch order* of every data address the
    program has accessed so far (the memory-timestamp-record idea of the
    SMARTS line of work), seeded with the initial working set at time
    zero.  Replaying it oldest-first through LRU caches reconstructs the
    cache contents a continuous run would hold at the checkpoint — the
    most recent lines of each set survive, older ones are evicted — which
    is what makes mid-program windows start from realistic cache state
    instead of stone-cold (CPI overestimate) or fully-warmed (CPI
    underestimate) extremes.  Branch history stays a bounded recent
    window: predictor state has a much shorter memory than caches.
    """

    mem_addresses: Tuple[int, ...] = ()           # last-touch order, oldest 1st
    cond_branches: Tuple[Tuple[int, bool], ...] = ()   # (pc, taken)
    branch_targets: Tuple[Tuple[int, int], ...] = ()   # (pc, actual target)


@dataclass
class Checkpoint:
    """Architectural state at an instruction-count boundary.

    ``memory`` is a private snapshot: starting an engine from a checkpoint
    must not be able to corrupt it, so consumers copy it per window.
    """

    icount: int
    pc: int
    regs: Dict[str, float]
    memory: SparseMemory
    warmup: WarmupState

    def engine_memory(self) -> SparseMemory:
        """A fresh mutable copy of the snapshot for one engine run."""
        return self.memory.copy()


# ---------------------------------------------------------------------------
# Closure compiler
# ---------------------------------------------------------------------------


def _compile_instruction(
    instr: Instruction,
    pc: int,
    recorder: Optional["_WarmupRecorder"],
):
    """Compile one instruction into a ``(regs, load, store) -> next_pc``
    closure.  All operand decoding happens here, once per static
    instruction; the closures must mirror ``execute_one`` exactly."""
    op = instr.opcode
    srcs = instr.srcs
    dest = instr.dest
    nxt = pc + 1
    has_rb = len(srcs) > 1

    # -- integer ALU --------------------------------------------------------
    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        a = srcs[0]
        sign = 1 if op is not Opcode.SUB else -1
        if op is Opcode.MUL:
            if has_rb:
                b = srcs[1]

                def h(regs, load, store, _d=dest, _a=a, _b=b, _n=nxt):
                    v = (regs[_a] * regs[_b]) & MASK64
                    regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                    return _n
            else:
                imm = instr.imm

                def h(regs, load, store, _d=dest, _a=a, _i=imm, _n=nxt):
                    v = (regs[_a] * _i) & MASK64
                    regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                    return _n
        elif has_rb:
            b = srcs[1]

            def h(regs, load, store, _d=dest, _a=a, _b=b, _s=sign, _n=nxt):
                v = (regs[_a] + _s * regs[_b]) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            imm = instr.imm

            def h(regs, load, store, _d=dest, _a=a, _i=imm, _s=sign, _n=nxt):
                v = (regs[_a] + _s * _i) & MASK64
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h

    if op in (Opcode.DIV, Opcode.REM):
        a = srcs[0]
        b = srcs[1] if has_rb else None
        imm = None if has_rb else instr.imm
        want_quot = op is Opcode.DIV

        def h(regs, load, store, _d=dest, _a=a, _b=b, _i=imm,
              _q=want_quot, _p=pc, _n=nxt):
            av = int(regs[_a])
            bv = int(regs[_b]) if _b is not None else int(_i)
            if bv == 0:
                raise ExecutionError(f"division by zero at pc={_p}")
            q = abs(av) // abs(bv)
            if (av < 0) != (bv < 0):
                q = -q
            v = (q if _q else av - q * bv) & MASK64
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h

    if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
        a = srcs[0]
        kind = op

        if has_rb:
            b = srcs[1]

            def h(regs, load, store, _d=dest, _a=a, _b=b, _k=kind, _n=nxt):
                av = regs[_a] & MASK64
                bv = regs[_b] & MASK64
                if _k is Opcode.AND:
                    v = av & bv
                elif _k is Opcode.OR:
                    v = av | bv
                else:
                    v = av ^ bv
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            bconst = int(instr.imm) & MASK64

            def h(regs, load, store, _d=dest, _a=a, _bc=bconst, _k=kind, _n=nxt):
                av = regs[_a] & MASK64
                if _k is Opcode.AND:
                    v = av & _bc
                elif _k is Opcode.OR:
                    v = av | _bc
                else:
                    v = av ^ _bc
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h

    if op in (Opcode.SHL, Opcode.SHR):
        a = srcs[0]
        left = op is Opcode.SHL
        if has_rb:
            b = srcs[1]

            def h(regs, load, store, _d=dest, _a=a, _b=b, _l=left, _n=nxt):
                av = regs[_a] & MASK64
                sh = int(regs[_b]) & 63
                v = (av << sh) & MASK64 if _l else av >> sh
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        else:
            sh = int(instr.imm) & 63

            def h(regs, load, store, _d=dest, _a=a, _sh=sh, _l=left, _n=nxt):
                av = regs[_a] & MASK64
                v = (av << _sh) & MASK64 if _l else av >> _sh
                regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
                return _n
        return h

    if op in (Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
              Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ):
        a = srcs[0]
        b = srcs[1] if has_rb else None
        imm = None if has_rb else instr.imm
        cmp = {
            Opcode.SLT: "lt", Opcode.FSLT: "lt",
            Opcode.SLE: "le", Opcode.FSLE: "le",
            Opcode.SEQ: "eq", Opcode.FSEQ: "eq",
            Opcode.SNE: "ne",
        }[op]

        def h(regs, load, store, _d=dest, _a=a, _b=b, _i=imm, _c=cmp, _n=nxt):
            av = regs[_a]
            bv = regs[_b] if _b is not None else _i
            if _c == "lt":
                regs[_d] = int(av < bv)
            elif _c == "le":
                regs[_d] = int(av <= bv)
            elif _c == "eq":
                regs[_d] = int(av == bv)
            else:
                regs[_d] = int(av != bv)
            return _n
        return h

    if op in (Opcode.MIN, Opcode.MAX, Opcode.FMIN, Opcode.FMAX):
        a = srcs[0]
        b = srcs[1] if has_rb else None
        imm = None if has_rb else instr.imm
        fn = min if op in (Opcode.MIN, Opcode.FMIN) else max

        def h(regs, load, store, _d=dest, _a=a, _b=b, _i=imm, _f=fn, _n=nxt):
            bv = regs[_b] if _b is not None else _i
            regs[_d] = _f(regs[_a], bv)
            return _n
        return h

    if op in (Opcode.MOV, Opcode.FMOV):
        a = srcs[0]

        def h(regs, load, store, _d=dest, _a=a, _n=nxt):
            regs[_d] = regs[_a]
            return _n
        return h

    if op is Opcode.LI:
        v = int(instr.imm) & MASK64
        value = v - _WRAP64 if v >= _SIGN64 else v

        def h(regs, load, store, _d=dest, _v=value, _n=nxt):
            regs[_d] = _v
            return _n
        return h

    if op is Opcode.FLI:
        value = float(instr.imm)

        def h(regs, load, store, _d=dest, _v=value, _n=nxt):
            regs[_d] = _v
            return _n
        return h

    # -- floating point -----------------------------------------------------
    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        a = srcs[0]
        b = srcs[1] if has_rb else None
        imm = None if has_rb else instr.imm
        kind = op

        def h(regs, load, store, _d=dest, _a=a, _b=b, _i=imm,
              _k=kind, _p=pc, _n=nxt):
            av = regs[_a]
            bv = regs[_b] if _b is not None else _i
            if _k is Opcode.FADD:
                regs[_d] = av + bv
            elif _k is Opcode.FSUB:
                regs[_d] = av - bv
            elif _k is Opcode.FMUL:
                regs[_d] = av * bv
            else:
                if bv == 0.0:
                    raise ExecutionError(f"float division by zero at pc={_p}")
                regs[_d] = av / bv
            return _n
        return h

    if op is Opcode.FSQRT:
        a = srcs[0]

        def h(regs, load, store, _d=dest, _a=a, _p=pc, _n=nxt):
            av = regs[_a]
            if av < 0.0:
                raise ExecutionError(f"sqrt of negative at pc={_p}")
            regs[_d] = math.sqrt(av)
            return _n
        return h

    if op is Opcode.FABS:
        a = srcs[0]

        def h(regs, load, store, _d=dest, _a=a, _n=nxt):
            regs[_d] = abs(regs[_a])
            return _n
        return h

    if op is Opcode.FCVT:
        a = srcs[0]

        def h(regs, load, store, _d=dest, _a=a, _n=nxt):
            regs[_d] = float(regs[_a])
            return _n
        return h

    if op is Opcode.ICVT:
        a = srcs[0]

        def h(regs, load, store, _d=dest, _a=a, _n=nxt):
            v = int(regs[_a]) & MASK64
            regs[_d] = v - _WRAP64 if v >= _SIGN64 else v
            return _n
        return h

    # -- memory -------------------------------------------------------------
    if op is Opcode.LOAD:
        base = srcs[0]
        off = int(instr.imm or 0)
        size = instr.size
        sign = 1 << (8 * size - 1)
        wrap = 1 << (8 * size)

        def h(regs, load, store, _d=dest, _b=base, _o=off, _z=size,
              _s=sign, _w=wrap, _n=nxt):
            raw = load(int(regs[_b]) + _o, _z)
            regs[_d] = raw - _w if raw >= _s else raw
            return _n
        return h

    if op is Opcode.STORE:
        val = srcs[0]
        base = srcs[1]
        off = int(instr.imm or 0)
        size = instr.size
        mask = (1 << (8 * size)) - 1

        def h(regs, load, store, _v=val, _b=base, _o=off, _z=size,
              _m=mask, _n=nxt):
            store(int(regs[_b]) + _o, _z, int(regs[_v]) & _m)
            return _n
        return h

    if op is Opcode.FLOAD:
        base = srcs[0]
        off = int(instr.imm or 0)
        size = instr.size

        def h(regs, load, store, _d=dest, _b=base, _o=off, _z=size, _n=nxt):
            regs[_d] = bits_to_float(load(int(regs[_b]) + _o, _z), _z)
            return _n
        return h

    if op is Opcode.FSTORE:
        val = srcs[0]
        base = srcs[1]
        off = int(instr.imm or 0)
        size = instr.size

        def h(regs, load, store, _v=val, _b=base, _o=off, _z=size, _n=nxt):
            store(int(regs[_b]) + _o, _z, float_to_bits(regs[_v], _z))
            return _n
        return h

    # -- control flow -------------------------------------------------------
    if op is Opcode.JMP:
        target = instr.target_index
        if recorder is not None:
            rec = recorder.targets.append

            def h(regs, load, store, _t=target, _p=pc, _r=rec):
                _r((_p, _t))
                return _t
        else:

            def h(regs, load, store, _t=target):
                return _t
        return h

    if op in (Opcode.BEQZ, Opcode.BNEZ):
        a = srcs[0]
        target = instr.target_index
        want_zero = op is Opcode.BEQZ
        if recorder is not None:
            rec = recorder.conds.append
            rect = recorder.targets.append

            def h(regs, load, store, _a=a, _t=target, _z=want_zero,
                  _p=pc, _n=nxt, _r=rec, _rt=rect):
                taken = (regs[_a] == 0) if _z else (regs[_a] != 0)
                _r((_p, taken))
                if taken:
                    _rt((_p, _t))
                    return _t
                return _n
        else:

            def h(regs, load, store, _a=a, _t=target, _z=want_zero, _n=nxt):
                if _z:
                    return _t if regs[_a] == 0 else _n
                return _t if regs[_a] != 0 else _n
        return h

    if op is Opcode.CALL:
        target = instr.target_index
        if recorder is not None:
            rec = recorder.targets.append

            def h(regs, load, store, _t=target, _p=pc, _n=nxt, _r=rec):
                regs["ra"] = _n
                _r((_p, _t))
                return _t
        else:

            def h(regs, load, store, _t=target, _n=nxt):
                regs["ra"] = _n
                return _t
        return h

    if op is Opcode.RET:
        # Guard against negative return addresses explicitly: Python list
        # indexing would silently wrap them instead of faulting.
        def h(regs, load, store, _p=pc):
            target = int(regs["ra"])
            if target < 0:
                raise ExecutionError(f"pc {target} out of range (ret at {_p})")
            return target
        return h

    if op is Opcode.HALT:
        exc = _Halt(pc)

        def h(regs, load, store, _e=exc):
            raise _e
        return h

    if op in (Opcode.DETACH, Opcode.REATTACH, Opcode.SYNC, Opcode.NOP):

        def h(regs, load, store, _n=nxt):
            return _n
        return h

    def h(regs, load, store, _op=op, _p=pc):  # pragma: no cover
        raise ExecutionError(f"unimplemented opcode {_op!r} at pc={_p}")
    return h


# Recorder-free handler tables are pure functions of the program (all
# mutable state — registers, memory — enters through call arguments), so
# they are compiled once per program and shared across executors.  A
# sampled run fast-forwards the same program at least twice (profiling,
# then checkpointing), and benchmark sweeps re-run the same programs many
# times; memoizing turns all but the first pass into pure execution.
_HANDLER_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _base_handlers(program: Program) -> List:
    handlers = _HANDLER_CACHE.get(program)
    if handlers is None:
        handlers = [
            _compile_instruction(instr, pc, None)
            for pc, instr in enumerate(program.instructions)
        ]
        _HANDLER_CACHE[program] = handlers
    return handlers


class _WarmupRecorder:
    """History buffers the recording closures append into.

    Memory is a recency-ordered last-touch map (a plain dict: re-touching
    an address moves it to the end), seeded with the initial working set;
    branch history is a bounded recent window.
    """

    def __init__(self, depth: int, initial_addresses=()):
        self.mem: Dict[int, None] = dict.fromkeys(initial_addresses)
        self.conds: deque = deque(maxlen=depth)
        self.targets: deque = deque(maxlen=depth)

    def touch(self, addr: int) -> None:
        mem = self.mem
        if addr in mem:
            del mem[addr]
        mem[addr] = None

    def snapshot(self) -> WarmupState:
        return WarmupState(
            mem_addresses=tuple(self.mem),
            cond_branches=tuple(self.conds),
            branch_targets=tuple(self.targets),
        )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class FastForwardExecutor:
    """Batched architectural interpreter over compiled closures.

    Args:
        program: the program to interpret.
        memory: initial memory (mutated in place, like ``Executor``).
        initial_regs: initial register overrides.
        collect_bbv: wrap block-end closures with basic-block counting
            (adds one indirection per *block*, not per instruction).
        record_warmup: keep bounded recent data addresses and branch
            outcomes for checkpoint warmup (0 disables recording).
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[SparseMemory] = None,
        initial_regs: Optional[Dict[str, float]] = None,
        collect_bbv: bool = False,
        record_warmup: int = 0,
    ):
        self.program = program
        self.memory = memory if memory is not None else SparseMemory()
        self.regs = initial_register_file()
        if initial_regs:
            self.regs.update(initial_regs)
        self.pc = 0
        self.icount = 0
        self.halted = False
        self.blocks = basic_blocks(program) if collect_bbv else None
        self._block_counts: List[int] = (
            [0] * len(self.blocks.leaders) if self.blocks else []
        )
        self._recorder = (
            _WarmupRecorder(record_warmup, self.memory.written_addresses())
            if record_warmup > 0 else None
        )
        if self._recorder is not None:
            base_load = self.memory.load
            base_store = self.memory.store
            rec = self._recorder.touch

            def load(addr, size, _r=rec, _l=base_load):
                _r(addr)
                return _l(addr, size)

            def store(addr, size, value, _r=rec, _s=base_store):
                _r(addr)
                _s(addr, size, value)

            self._load = load
            self._store = store
        else:
            self._load = self.memory.load
            self._store = self.memory.store
        self._handlers = self._compile(collect_bbv)

    def _compile(self, collect_bbv: bool):
        if self._recorder is None:
            handlers = list(_base_handlers(self.program))
        else:
            handlers = [
                _compile_instruction(instr, pc, self._recorder)
                for pc, instr in enumerate(self.program.instructions)
            ]
        if collect_bbv:
            counts = self._block_counts
            block_of_pc = self.blocks.block_of_pc
            for end in self.blocks.block_ends:
                inner = handlers[end]
                bid = block_of_pc[end]

                def counted(regs, load, store, _i=inner, _b=bid, _c=counts):
                    _c[_b] += 1
                    return _i(regs, load, store)

                handlers[end] = counted
        return handlers

    # -- execution ----------------------------------------------------------

    def run(self, max_instructions: int) -> int:
        """Execute up to ``max_instructions``; returns the number executed.

        Stops early on ``halt`` (which counts as one executed instruction,
        matching :class:`~repro.uarch.executor.Executor`).
        """
        if self.halted or max_instructions <= 0:
            return 0
        handlers = self._handlers
        regs = self.regs
        load = self._load
        store = self._store
        pc = self.pc
        executed = 0
        try:
            while executed < max_instructions:
                pc = handlers[pc](regs, load, store)
                executed += 1
        except _Halt as halt:
            pc = halt.pc
            executed += 1
            self.halted = True
        except IndexError:
            raise ExecutionError(
                f"pc {pc} out of range in {self.program.name}"
            ) from None
        if not self.halted and not 0 <= pc < len(self._handlers):
            # A ``ret`` to a bogus address lands here at the window edge.
            raise ExecutionError(f"pc {pc} out of range in {self.program.name}")
        self.pc = pc
        self.icount += executed
        return executed

    def run_to(self, target_icount: int) -> int:
        """Fast-forward until ``icount == target_icount`` (exact)."""
        executed = self.run(target_icount - self.icount)
        if self.icount < target_icount and self.halted:
            raise ExecutionError(
                f"{self.program.name} halted at {self.icount} instructions, "
                f"before the requested boundary {target_icount}"
            )
        return executed

    def run_to_halt(self, max_instructions: int = 50_000_000) -> int:
        """Run to completion; returns the total dynamic instruction count."""
        while not self.halted:
            if self.icount >= max_instructions:
                raise ExecutionError(
                    f"{self.program.name} exceeded {max_instructions} "
                    f"instructions"
                )
            self.run(max_instructions - self.icount)
        return self.icount

    # -- sampling hooks ------------------------------------------------------

    def take_block_counts(self) -> List[int]:
        """Return and reset the per-block execution counts."""
        if self.blocks is None:
            raise ExecutionError("executor built without collect_bbv")
        counts = list(self._block_counts)
        self._block_counts[:] = [0] * len(counts)
        return counts

    def checkpoint(self) -> Checkpoint:
        """Snapshot the architectural state (plus warmup history) here."""
        warmup = (
            self._recorder.snapshot() if self._recorder is not None
            else WarmupState()
        )
        return Checkpoint(
            icount=self.icount,
            pc=self.pc,
            regs=dict(self.regs),
            memory=self.memory.copy(),
            warmup=warmup,
        )


# ---------------------------------------------------------------------------
# Interval profiling (sampling pass 1) and checkpoint collection (pass 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """One profiled instruction interval (fixed length; last may be short)."""

    index: int
    start_icount: int
    length: int                   # executed instructions (last may be short)
    bbv: Tuple[int, ...]          # per-block executions * block length


def profile_intervals(
    program: Program,
    memory: SparseMemory,
    initial_regs: Dict[str, float],
    interval_length: int,
    max_instructions: int = 500_000_000,
) -> Tuple[List[Interval], int]:
    """Fast-forward the whole program, one BBV per interval.

    Returns ``(intervals, total_instructions)``.  BBV entries are block
    execution counts weighted by block size, so each vector's L1 mass
    approximates the instructions the interval spent per block — the
    standard SimPoint frequency-vector construction.
    """
    ff = FastForwardExecutor(
        program, memory, initial_regs, collect_bbv=True
    )
    lengths = ff.blocks.block_lengths
    intervals: List[Interval] = []
    while not ff.halted:
        if ff.icount >= max_instructions:
            raise ExecutionError(
                f"{program.name} exceeded {max_instructions} instructions "
                f"during interval profiling"
            )
        start = ff.icount
        executed = ff.run(interval_length)
        if executed == 0:
            break
        counts = ff.take_block_counts()
        bbv = tuple(c * l for c, l in zip(counts, lengths))
        intervals.append(
            Interval(
                index=len(intervals),
                start_icount=start,
                length=executed,
                bbv=bbv,
            )
        )
    return intervals, ff.icount


def collect_checkpoints(
    program: Program,
    memory: SparseMemory,
    initial_regs: Dict[str, float],
    boundaries: Sequence[int],
    record_warmup: int = 4096,
) -> Dict[int, Checkpoint]:
    """Re-run fast-forward, snapshotting state at each boundary icount.

    ``boundaries`` are absolute instruction counts (ascending order not
    required; they are sorted).  A boundary of 0 yields the pristine
    program-entry state without executing anything.
    """
    ff = FastForwardExecutor(
        program, memory, initial_regs, record_warmup=record_warmup
    )
    checkpoints: Dict[int, Checkpoint] = {}
    for target in sorted(set(boundaries)):
        ff.run_to(target)
        checkpoints[target] = ff.checkpoint()
    return checkpoints
