"""SimPoint-style sampled simulation (see docs/sampling.md).

Long workloads are made cheap by splitting simulation into:

1. a **fast-forward** pass through a closure-compiled architectural
   interpreter (:mod:`.fastforward`) that profiles basic-block vectors
   per fixed-length instruction interval,
2. a deterministic **k-means** clustering of those vectors
   (:mod:`.kmeans`) that picks representative intervals and weights,
3. **detailed windows**: the cycle-level engine replayed from
   architectural checkpoints at the representatives' boundaries, and
4. a **weighted extrapolation** (:mod:`.extrapolate`) of the window
   statistics into a whole-program estimate with an error bound.

The public entry points live in :mod:`.runner`.
"""

from .fastforward import (
    Checkpoint,
    FastForwardExecutor,
    Interval,
    WarmupState,
    basic_blocks,
    collect_checkpoints,
    profile_intervals,
)
from .kmeans import ClusterResult, cluster_intervals, kmeans
from .extrapolate import SampledRunResult, extrapolate
from .runner import (
    SAMPLING_SCHEMA_VERSION,
    SamplingConfig,
    run_program_sampled,
    run_workload_sampled,
)

__all__ = [
    "Checkpoint",
    "ClusterResult",
    "FastForwardExecutor",
    "Interval",
    "SAMPLING_SCHEMA_VERSION",
    "SampledRunResult",
    "SamplingConfig",
    "WarmupState",
    "basic_blocks",
    "cluster_intervals",
    "collect_checkpoints",
    "extrapolate",
    "kmeans",
    "profile_intervals",
    "run_program_sampled",
    "run_workload_sampled",
]
