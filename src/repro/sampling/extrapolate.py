"""Weighted extrapolation of sampled windows into whole-program estimates.

Each representative interval's detailed window yields a post-warmup CPI;
the whole-program estimate is the instruction-weighted combination

    est_cpi     = sum_c weight_c * cpi_c
    est_cycles  = est_cpi * total_instructions

An **error bound** accompanies every estimate: treating per-interval CPI
as a random variable whose per-cluster means we measured, the standard
error of the weighted mean over ``N`` intervals with ``k`` of them
simulated is

    stderr = sqrt( sum_c weight_c * (cpi_c - est_cpi)^2 / N )
             * sqrt( (N - k) / max(1, N - 1) )       # finite-population

and the reported bound is the relative 95% half-width
``1.96 * stderr / est_cpi``.  When every interval is simulated (k == N)
the correction zeroes the bound — the estimate is then exact up to window
boundary effects.  This is the classic CLT bound of the SimPoint/SMARTS
line of work; it quantifies *cluster-dispersion* risk, not model bias.

Secondary counters (cache misses, branch stats, ...) are scaled the same
way: each window's per-instruction rate, weighted by its cluster share,
times the total instruction count.  Window rates include the detailed
warmup portion — a deliberate approximation, documented in
docs/sampling.md.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..uarch.statistics import SimStats

# SimStats fields that are not linearly-scalable counters.
_NON_SCALED_FIELDS = {
    "cycles", "max_packing_factor", "active_threadlet_cycles", "regions",
}


@dataclass(frozen=True)
class WindowMeasurement:
    """One detailed window: a representative interval simulated in full.

    Instruction counts are in the *sequential stream* the fast-forward
    profiler counts (``arch + spec_committed`` in engine terms), so they
    line up with interval lengths on speculating machines too.
    """

    interval_index: int
    weight: float                 # cluster instruction share, sums to 1
    warmup_instructions: int      # detailed-warmup prefix (not measured)
    measured_instructions: int
    measured_cycles: int
    stats: SimStats               # full window stats (warmup included)

    @property
    def cpi(self) -> float:
        """Cycles per *sequential* instruction over the measured portion."""
        if self.measured_instructions == 0:
            return 0.0
        return self.measured_cycles / self.measured_instructions


@dataclass
class SampledRunResult:
    """A sampled simulation estimate plus its provenance.

    ``stats`` mirrors a detailed run's :class:`SimStats` (so downstream
    consumers — speedup analyses, serializers — work unchanged), with
    counters scaled from the measured windows.  The sampling-specific
    attributes feed the ``sampling`` metric specs.
    """

    stats: SimStats
    estimated_cpi: float
    estimated_cycles: int
    error_bound: float            # relative 95% half-width of est_cpi
    total_instructions: int
    num_intervals: int
    num_clusters: int
    interval_length: int
    detailed_instructions: int    # instructions simulated in detail
    ff_instructions_per_second: float = 0.0
    windows: List[WindowMeasurement] = field(default_factory=list)
    cached: bool = False

    @property
    def detailed_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.detailed_instructions / self.total_instructions


def extrapolate(
    windows: Sequence[WindowMeasurement],
    total_instructions: int,
    num_intervals: int,
    interval_length: int,
    ff_instructions_per_second: float = 0.0,
) -> SampledRunResult:
    """Combine per-window measurements into the whole-program estimate."""
    if not windows:
        raise ValueError("no windows to extrapolate from")
    live = [w for w in windows if w.measured_instructions > 0]
    if not live:
        raise ValueError("all windows measured zero instructions")
    weight_total = sum(w.weight for w in live)
    est_cpi = sum(w.weight * w.cpi for w in live) / weight_total

    # Error bound: weighted CPI dispersion across clusters, shrunk by the
    # finite-population correction (see module docstring).
    k = len(live)
    n = max(num_intervals, k)
    var = sum(
        w.weight * (w.cpi - est_cpi) ** 2 for w in live
    ) / weight_total
    fpc = math.sqrt((n - k) / max(1, n - 1)) if n > k else 0.0
    stderr = math.sqrt(var / n) * fpc
    error_bound = 1.96 * stderr / est_cpi if est_cpi > 0 else 0.0

    est_cycles = int(round(est_cpi * total_instructions))
    stats = SimStats(cycles=est_cycles)
    scaled: Dict[str, float] = {}
    threadlet_hist: Dict[int, float] = {}
    for w in live:
        denom = (
            w.warmup_instructions + w.measured_instructions
        ) or w.measured_instructions
        factor = (w.weight / weight_total) * total_instructions / denom
        for f in dataclasses.fields(SimStats):
            if f.name in _NON_SCALED_FIELDS:
                continue
            scaled[f.name] = scaled.get(f.name, 0.0) + (
                getattr(w.stats, f.name) * factor
            )
        cycle_factor = (
            (w.weight / weight_total) * est_cycles / w.stats.cycles
            if w.stats.cycles else 0.0
        )
        for count, cycles in w.stats.active_threadlet_cycles.items():
            threadlet_hist[count] = (
                threadlet_hist.get(count, 0.0) + cycles * cycle_factor
            )
    for name, value in scaled.items():
        setattr(stats, name, int(round(value)))
    stats.active_threadlet_cycles = {
        count: int(round(v)) for count, v in sorted(threadlet_hist.items())
    }
    stats.max_packing_factor = max(
        (w.stats.max_packing_factor for w in live), default=1
    )

    detailed = sum(
        w.warmup_instructions + w.measured_instructions for w in windows
    )
    # Headline CPI in the engine's own convention (cycles per committed
    # *architectural* instruction) so sampled and detailed runs compare
    # directly; ``est_cpi`` above is per sequential instruction.
    reported_cpi = (
        est_cycles / stats.arch_instructions
        if stats.arch_instructions else est_cpi
    )
    return SampledRunResult(
        stats=stats,
        estimated_cpi=reported_cpi,
        estimated_cycles=est_cycles,
        error_bound=error_bound,
        total_instructions=total_instructions,
        num_intervals=num_intervals,
        num_clusters=len(windows),
        interval_length=interval_length,
        detailed_instructions=detailed,
        ff_instructions_per_second=ff_instructions_per_second,
        windows=list(windows),
    )
