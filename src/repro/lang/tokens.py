"""Token definitions for the Frog mini-language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenKind(enum.Enum):
    # Literals and identifiers.
    INT = "int_lit"
    FLOAT = "float_lit"
    IDENT = "ident"

    # Keywords.
    KW_FN = "fn"
    KW_VAR = "var"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_PTR = "ptr"
    KW_INT32 = "int32"
    KW_INT16 = "int16"
    KW_INT8 = "int8"
    KW_FLOAT32 = "float32"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    ARROW = "->"
    LT_GENERIC = "<"  # also less-than; parser disambiguates via context
    GT_GENERIC = ">"

    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LE = "<="
    GE = ">="
    ANDAND = "&&"
    OROR = "||"
    NOT = "!"

    # Pragmas.
    PRAGMA = "pragma"

    EOF = "eof"


KEYWORDS = {
    "fn": TokenKind.KW_FN,
    "var": TokenKind.KW_VAR,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "ptr": TokenKind.KW_PTR,
    "int32": TokenKind.KW_INT32,
    "int16": TokenKind.KW_INT16,
    "int8": TokenKind.KW_INT8,
    "float32": TokenKind.KW_FLOAT32,
}


@dataclass
class Token:
    kind: TokenKind
    text: str
    value: Union[int, float, str, None]
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
