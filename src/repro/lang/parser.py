"""Recursive-descent parser for the Frog mini-language.

Grammar (roughly)::

    module      := func*
    func        := "fn" IDENT "(" params? ")" ("->" type)? block
    params      := param ("," param)*
    param       := IDENT ":" type
    type        := "int" | "float" | "int32" | "int16" | "int8" | "float32"
                 | "ptr" "<" type ">"
    block       := "{" stmt* "}"
    stmt        := varDecl | if | while | for | return | break | continue
                 | assignOrExpr ";"
    varDecl     := "var" IDENT ":" type ("=" expr)? ";"
    while       := [pragma] "while" "(" expr ")" block
    for         := [pragma] "for" "(" simpleStmt? ";" expr? ";" simpleStmt? ")" block
    assignOrExpr:= lvalue "=" expr | expr
    expr        := orExpr
    orExpr      := andExpr ("||" andExpr)*
    andExpr     := bitOr ("&&" bitOr)*
    bitOr       := bitXor ("|" bitXor)*
    bitXor      := bitAnd ("^" bitAnd)*
    bitAnd      := cmp ("&" cmp)*
    cmp         := shift (("=="|"!="|"<"|"<="|">"|">=") shift)?
    shift       := addsub (("<<"|">>") addsub)*
    addsub      := muldiv (("+"|"-") muldiv)*
    muldiv      := unary (("*"|"/"|"%") unary)*
    unary       := ("-"|"!") unary | postfix
    postfix     := primary ("[" expr "]")*
    primary     := INT | FLOAT | IDENT | call | cast | "(" expr ")"

``#pragma loopfrog`` before a loop attaches to it; the hint-insertion pass
only considers pragma-marked loops, matching the paper's manual loop
selection (section 5.1).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

_TYPE_TOKENS = {
    TokenKind.KW_INT: ast.INT,
    TokenKind.KW_FLOAT: ast.FLOAT,
    TokenKind.KW_INT32: ast.INT32,
    TokenKind.KW_INT16: ast.INT16,
    TokenKind.KW_INT8: ast.INT8,
    TokenKind.KW_FLOAT32: ast.FLOAT32,
}

_CMP_OPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT_GENERIC: "<",
    TokenKind.LE: "<=",
    TokenKind.GT_GENERIC: ">",
    TokenKind.GE: ">=",
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {tok.text or tok.kind.value!r}",
                tok.line,
                tok.col,
            )
        return self.advance()

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    # -- declarations -------------------------------------------------------

    def parse_module(self) -> ast.Module:
        functions = []
        while not self.at(TokenKind.EOF):
            # Stray pragmas at top level are ignored (like a real compiler).
            if self.accept(TokenKind.PRAGMA):
                continue
            functions.append(self.parse_function())
        return ast.Module(functions)

    def parse_function(self) -> ast.FuncDecl:
        start = self.expect(TokenKind.KW_FN)
        name = self.expect(TokenKind.IDENT, "function name").text
        self.expect(TokenKind.LPAREN)
        params = []
        if not self.at(TokenKind.RPAREN):
            while True:
                pname = self.expect(TokenKind.IDENT, "parameter name").text
                self.expect(TokenKind.COLON)
                params.append((pname, self.parse_type()))
                if not self.accept(TokenKind.COMMA):
                    break
        self.expect(TokenKind.RPAREN)
        ret_type = None
        if self.accept(TokenKind.ARROW):
            ret_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDecl(name, params, ret_type, body, line=start.line)

    def parse_type(self) -> ast.Type:
        tok = self.peek()
        if tok.kind in _TYPE_TOKENS:
            self.advance()
            return _TYPE_TOKENS[tok.kind]
        if tok.kind is TokenKind.KW_PTR:
            self.advance()
            self.expect(TokenKind.LT_GENERIC, "'<'")
            elem = self.parse_type()
            # Split a '>>' closing two nested ptr<> levels (the classic
            # C++ template problem) into two '>' tokens.
            if self.at(TokenKind.SHR):
                shr = self.peek()
                self.tokens[self.pos] = Token(
                    TokenKind.GT_GENERIC, ">", None, shr.line, shr.col
                )
                self.tokens.insert(
                    self.pos + 1,
                    Token(TokenKind.GT_GENERIC, ">", None, shr.line, shr.col + 1),
                )
            self.expect(TokenKind.GT_GENERIC, "'>'")
            return ast.ptr_to(elem)
        raise ParseError(f"expected type, found {tok.text!r}", tok.line, tok.col)

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        brace = self.expect(TokenKind.LBRACE)
        stmts = []
        while not self.at(TokenKind.RBRACE):
            if self.at(TokenKind.EOF):
                raise ParseError("unterminated block", brace.line, brace.col)
            stmts.append(self.parse_statement())
        self.expect(TokenKind.RBRACE)
        return ast.Block(stmts, line=brace.line)

    def parse_statement(self) -> ast.Stmt:
        pragma = None
        while self.at(TokenKind.PRAGMA):
            tok = self.advance()
            if isinstance(tok.value, str) and tok.value.split():
                pragma = tok.value
        tok = self.peek()

        if tok.kind is TokenKind.KW_VAR:
            return self.parse_var_decl()
        if tok.kind is TokenKind.KW_IF:
            return self.parse_if()
        if tok.kind is TokenKind.KW_WHILE:
            return self.parse_while(pragma)
        if tok.kind is TokenKind.KW_FOR:
            return self.parse_for(pragma)
        if tok.kind is TokenKind.KW_RETURN:
            self.advance()
            value = None if self.at(TokenKind.SEMI) else self.parse_expr()
            self.expect(TokenKind.SEMI)
            return ast.Return(value, line=tok.line)
        if tok.kind is TokenKind.KW_BREAK:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Break(line=tok.line)
        if tok.kind is TokenKind.KW_CONTINUE:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Continue(line=tok.line)
        if tok.kind is TokenKind.LBRACE:
            return self.parse_block()

        stmt = self.parse_simple_statement()
        self.expect(TokenKind.SEMI)
        return stmt

    def parse_simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing semicolon)."""
        tok = self.peek()
        if tok.kind is TokenKind.KW_VAR:
            return self.parse_var_decl(consume_semi=False)
        expr = self.parse_expr()
        if self.accept(TokenKind.ASSIGN):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            value = self.parse_expr()
            return ast.Assign(expr, value, line=tok.line)
        return ast.ExprStmt(expr, line=tok.line)

    def parse_var_decl(self, consume_semi: bool = True) -> ast.VarDecl:
        tok = self.expect(TokenKind.KW_VAR)
        name = self.expect(TokenKind.IDENT, "variable name").text
        self.expect(TokenKind.COLON)
        var_type = self.parse_type()
        init = None
        if self.accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        if consume_semi:
            self.expect(TokenKind.SEMI)
        return ast.VarDecl(name, var_type, init, line=tok.line)

    def parse_if(self) -> ast.If:
        tok = self.expect(TokenKind.KW_IF)
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        then = self.parse_block()
        els = None
        if self.accept(TokenKind.KW_ELSE):
            if self.at(TokenKind.KW_IF):
                els = ast.Block([self.parse_if()], line=self.peek().line)
            else:
                els = self.parse_block()
        return ast.If(cond, then, els, line=tok.line)

    def parse_while(self, pragma: Optional[str]) -> ast.While:
        tok = self.expect(TokenKind.KW_WHILE)
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.While(cond, body, pragma=pragma, line=tok.line)

    def parse_for(self, pragma: Optional[str]) -> ast.For:
        tok = self.expect(TokenKind.KW_FOR)
        self.expect(TokenKind.LPAREN)
        init = None
        if not self.at(TokenKind.SEMI):
            init = self.parse_simple_statement()
        self.expect(TokenKind.SEMI)
        cond = None
        if not self.at(TokenKind.SEMI):
            cond = self.parse_expr()
        self.expect(TokenKind.SEMI)
        step = None
        if not self.at(TokenKind.RPAREN):
            step = self.parse_simple_statement()
        self.expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.For(init, cond, step, body, pragma=pragma, line=tok.line)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def _left_assoc(self, sub, kinds) -> ast.Expr:
        expr = sub()
        while self.peek().kind in kinds:
            op_tok = self.advance()
            right = sub()
            expr = ast.BinOp(kinds[op_tok.kind], expr, right, line=op_tok.line)
        return expr

    def parse_or(self) -> ast.Expr:
        return self._left_assoc(self.parse_and, {TokenKind.OROR: "||"})

    def parse_and(self) -> ast.Expr:
        return self._left_assoc(self.parse_bitor, {TokenKind.ANDAND: "&&"})

    def parse_bitor(self) -> ast.Expr:
        return self._left_assoc(self.parse_bitxor, {TokenKind.PIPE: "|"})

    def parse_bitxor(self) -> ast.Expr:
        return self._left_assoc(self.parse_bitand, {TokenKind.CARET: "^"})

    def parse_bitand(self) -> ast.Expr:
        return self._left_assoc(self.parse_cmp, {TokenKind.AMP: "&"})

    def parse_cmp(self) -> ast.Expr:
        expr = self.parse_shift()
        if self.peek().kind in _CMP_OPS:
            op_tok = self.advance()
            right = self.parse_shift()
            expr = ast.BinOp(_CMP_OPS[op_tok.kind], expr, right, line=op_tok.line)
        return expr

    def parse_shift(self) -> ast.Expr:
        return self._left_assoc(
            self.parse_addsub, {TokenKind.SHL: "<<", TokenKind.SHR: ">>"}
        )

    def parse_addsub(self) -> ast.Expr:
        return self._left_assoc(
            self.parse_muldiv, {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
        )

    def parse_muldiv(self) -> ast.Expr:
        return self._left_assoc(
            self.parse_unary,
            {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
        )

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.MINUS:
            self.advance()
            return ast.UnOp("-", self.parse_unary(), line=tok.line)
        if tok.kind is TokenKind.NOT:
            self.advance()
            return ast.UnOp("!", self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.accept(TokenKind.LBRACKET):
            index = self.parse_expr()
            self.expect(TokenKind.RBRACKET)
            expr = ast.Index(expr, index, line=self.peek().line)
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(int(tok.value), line=tok.line)
        if tok.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(float(tok.value), line=tok.line)
        if tok.kind in (TokenKind.KW_INT, TokenKind.KW_FLOAT):
            # Cast syntax: int(expr), float(expr).
            cast_type = ast.INT if tok.kind is TokenKind.KW_INT else ast.FLOAT
            self.advance()
            self.expect(TokenKind.LPAREN)
            operand = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return ast.Cast(cast_type, operand, line=tok.line)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.accept(TokenKind.LPAREN):
                args = []
                if not self.at(TokenKind.RPAREN):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(TokenKind.COMMA):
                            break
                self.expect(TokenKind.RPAREN)
                return ast.Call(tok.text, args, line=tok.line)
            return ast.Name(tok.text, line=tok.line)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse(source: str) -> ast.Module:
    """Parse Frog source text into a :class:`~repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()
