"""Frog: the mini C-like source language for LoopFrog kernels.

Use :func:`parse` to obtain an AST, or go straight to machine code with
:func:`repro.compiler.compile_frog`.
"""

from . import ast
from .lexer import tokenize
from .parser import parse

__all__ = ["ast", "tokenize", "parse"]
