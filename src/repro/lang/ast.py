"""Abstract syntax tree for the Frog mini-language.

Frog is a tiny C-like language, just rich enough for the loop kernels the
evaluation needs: 64-bit ints, doubles, typed pointers with element sizes of
1/2/4/8 bytes, functions (always inlined by the compiler), ``if``/``while``/
``for``, ``break``/``continue``, and a ``#pragma loopfrog`` annotation that
marks a loop for LoopFrog hint insertion (paper section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Type:
    """A Frog type.

    ``kind`` is ``"int"``, ``"float"`` or ``"ptr"``.  For scalars ``size`` is
    the in-memory size in bytes; for pointers ``elem`` is the element type
    (pointers themselves are 8-byte ints).
    """

    kind: str
    size: int = 8
    elem: Optional["Type"] = None

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def reg_class(self) -> str:
        """Register class this type lives in: ``"int"`` or ``"float"``."""
        if self.kind == "float":
            return "float"
        return "int"

    def __str__(self) -> str:
        if self.is_ptr:
            return f"ptr<{self.elem}>"
        if self.kind == "int" and self.size != 8:
            return f"int{self.size * 8}"
        if self.kind == "float" and self.size != 8:
            return f"float{self.size * 8}"
        return self.kind


INT = Type("int", 8)
INT32 = Type("int", 4)
INT16 = Type("int", 2)
INT8 = Type("int", 1)
FLOAT = Type("float", 8)
FLOAT32 = Type("float", 4)


def ptr_to(elem: Type) -> Type:
    return Type("ptr", 8, elem)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Name(Expr):
    ident: str


@dataclass
class BinOp(Expr):
    """Binary operation.  ``op`` is the source operator text (e.g. ``"+"``,
    ``"<="``, ``"&&"``)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclass
class Index(Expr):
    """Pointer indexing ``base[index]``; element size from the base's type."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """A call to a user function (inlined) or intrinsic (sqrt/abs/min/max)."""

    func: str
    args: List[Expr]


@dataclass
class Cast(Expr):
    """Explicit conversion, written ``int(e)`` or ``float(e)``."""

    type: Type
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class Block(Stmt):
    stmts: List[Stmt]


@dataclass
class VarDecl(Stmt):
    name: str
    type: Type
    init: Optional[Expr]


@dataclass
class Assign(Stmt):
    """Assignment to a variable or to ``ptr[index]``."""

    target: Expr  # Name or Index
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Block
    els: Optional[Block]


@dataclass
class While(Stmt):
    cond: Expr
    body: Block
    pragma: Optional[str] = None  # e.g. "loopfrog"


@dataclass
class For(Stmt):
    """C-style for loop.  ``init`` and ``step`` are statements (or None)."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block
    pragma: Optional[str] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class FuncDecl:
    name: str
    params: List[Tuple[str, Type]]
    ret_type: Optional[Type]
    body: Block
    line: int = 0


@dataclass
class Module:
    functions: List[FuncDecl]

    def function(self, name: str) -> FuncDecl:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)
