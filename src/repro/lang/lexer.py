"""Hand-written lexer for the Frog mini-language.

Comments start with ``//`` or ``#`` and run to end of line, **except** that a
line beginning with ``#pragma`` is lexed into a PRAGMA token whose value is
the remainder of the line (e.g. ``loopfrog``).  This mirrors how the paper's
prototype selects loops with source pragmas (section 5.1).
"""

from __future__ import annotations

from typing import List

from ..errors import ParseError
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "->": TokenKind.ARROW,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.ANDAND,
    "||": TokenKind.OROR,
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "<": TokenKind.LT_GENERIC,
    ">": TokenKind.GT_GENERIC,
    "!": TokenKind.NOT,
}


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments and pragmas.
        if ch == "#" or source.startswith("//", i):
            start = i
            while i < n and source[i] != "\n":
                i += 1
            text = source[start:i]
            if text.startswith("#pragma"):
                payload = text[len("#pragma"):].strip()
                tokens.append(Token(TokenKind.PRAGMA, text, payload, line, col))
            col += i - start
            continue

        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i].isdigit() or source[i] in "abcdefABCDEF"):
                    i += 1
                text = source[start:i]
                tokens.append(Token(TokenKind.INT, text, int(text, 16), line, col))
                col += i - start
                continue
            while i < n and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            try:
                value = float(text) if is_float else int(text)
            except ValueError:
                raise error(f"malformed number {text!r}")
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text, value, line, col))
            col += i - start
            continue

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, text, line, col))
            col += i - start
            continue

        # Operators.
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, None, line, col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, None, line, col))
            i += 1
            col += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", None, line, col))
    return tokens
