"""Common infrastructure for the classic-TLS comparison models (table 3).

The Multiscalar-like and STAMPede-like models operate at *task* (epoch)
granularity: the program is executed functionally once and its dynamic
instruction stream is segmented at the LoopFrog hint boundaries into
ordered tasks, each carrying its instruction count and read/write sets.
The scheme models then schedule those tasks onto their processing units
with the scheme's own overheads and conflict rules.

This granularity is exactly what table 3 compares (speedup, core count,
area, task sizes); pipeline-level detail of 1995/2005-era cores is out of
scope and would not change the comparison axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..uarch.executor import Executor
from ..uarch.memory_state import SparseMemory


@dataclass
class Task:
    """One ordered unit of speculative work."""

    index: int
    instructions: int
    reads: Set[int] = field(default_factory=set)    # granule IDs
    writes: Set[int] = field(default_factory=set)
    parallel: bool = False  # inside an annotated loop?


@dataclass
class TaskTrace:
    tasks: List[Task]

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.tasks)

    @property
    def parallel_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.parallel]

    def mean_parallel_task_size(self) -> float:
        tasks = self.parallel_tasks
        if not tasks:
            return 0.0
        return sum(t.instructions for t in tasks) / len(tasks)


def extract_tasks(
    program: Program,
    memory: Optional[SparseMemory] = None,
    initial_regs: Optional[dict] = None,
    granule_bytes: int = 8,
    max_instructions: int = 5_000_000,
) -> TaskTrace:
    """Segment one functional run of ``program`` into ordered tasks.

    Task boundaries follow the LoopFrog region semantics: inside an
    annotated loop each iteration (ending at its ``reattach``) is one
    parallel task; code outside annotated loops accumulates into serial
    tasks.
    """
    executor = Executor(program, memory)
    if initial_regs:
        executor.regs.update(initial_regs)

    tasks: List[Task] = []
    current = Task(0, 0)
    region: Optional[int] = None

    def close(parallel_next: bool) -> None:
        nonlocal current
        if current.instructions:
            tasks.append(current)
        current = Task(len(tasks), 0, parallel=parallel_next)

    def hook(pc, instr, result):
        nonlocal region
        current.instructions += 1
        if result.mem_addr is not None:
            g0 = result.mem_addr // granule_bytes
            g1 = (result.mem_addr + result.mem_size - 1) // granule_bytes
            target = current.writes if instr.is_store else current.reads
            target.update(range(g0, g1 + 1))
        if not instr.is_hint:
            return
        op = instr.opcode
        if op is Opcode.DETACH and region is None:
            region = instr.region_index
            close(parallel_next=True)
        elif op is Opcode.REATTACH and region == instr.region_index:
            close(parallel_next=True)
        elif op is Opcode.SYNC and region == instr.region_index:
            region = None
            close(parallel_next=False)

    executor._trace_hook = hook
    executor.run(max_instructions=max_instructions)
    close(parallel_next=False)
    return TaskTrace(tasks)


def conflicts_with(task: Task, older: Task) -> bool:
    """True RAW dependence: ``task`` reads a granule ``older`` writes."""
    return not task.reads.isdisjoint(older.writes)


def coarsen(trace: TaskTrace, target_size: int) -> TaskTrace:
    """Merge consecutive parallel tasks into coarser epochs of roughly
    ``target_size`` instructions.

    Classic multicore TLS (STAMPede) compiles for much coarser epochs than
    LoopFrog's iteration granularity to amortise cross-core communication
    (table 3: ~1,400-instruction tasks); this models that compiler choice
    on the same dynamic work.
    """
    merged: List[Task] = []
    current: Optional[Task] = None
    for task in trace.tasks:
        if not task.parallel:
            if current is not None:
                merged.append(current)
                current = None
            merged.append(
                Task(len(merged), task.instructions, set(task.reads),
                     set(task.writes), parallel=False)
            )
            continue
        if current is None:
            current = Task(len(merged), 0, set(), set(), parallel=True)
        current.instructions += task.instructions
        current.reads |= task.reads
        current.writes |= task.writes
        if current.instructions >= target_size:
            merged.append(current)
            current = None
    if current is not None:
        merged.append(current)
    for i, task in enumerate(merged):
        task.index = i
    return TaskTrace(merged)
