"""A STAMPede-like multicore TLS model (Steffan et al., 2005).

Four conventional cores with private caches.  Epochs are distributed
round-robin; spawning an epoch on another core costs a cross-core message,
and the homefree (commit) token is passed serially between cores.  Private
caches mean speculative state is tracked per core; a RAW violation with an
older in-flight epoch squashes the younger epoch, which restarts after the
producer commits.

Compared with the Multiscalar ring this targets coarser tasks to amortise
the (much larger) communication latencies, matching the table-3 row:
4 cores, >4x area, ~1400-instruction tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .common import Task, TaskTrace, coarsen, conflicts_with
from .multiscalar import TlsResult


@dataclass
class StampedeConfig:
    num_cores: int = 4
    core_ipc: float = 2.0          # 4-issue simple OoO, 5-stage
    spawn_latency: int = 40        # cross-core fork message
    token_latency: int = 20        # homefree token pass
    squash_penalty: int = 60       # invalidate speculative cache state
    area_factor: float = 4.2       # >4x: four cores + TLS cache support
    target_task_size: int = 1400   # epochs are coarsened to amortise comms

    @property
    def name(self) -> str:
        return "STAMPede (private cache) (2005)"


def simulate_stampede(
    trace: TaskTrace, config: Optional[StampedeConfig] = None
) -> TlsResult:
    config = config or StampedeConfig()
    ipc = config.core_ipc
    baseline_cycles = trace.total_instructions / ipc
    # STAMPede compiles for coarse epochs (table 3); regroup the dynamic
    # work accordingly before scheduling.
    trace = coarsen(trace, config.target_task_size)

    core_free = [0.0] * config.num_cores
    prev_spawn = 0.0
    commit_time = 0.0
    squashes = 0
    window: List[tuple] = []

    for i, task in enumerate(trace.tasks):
        core = i % config.num_cores
        exec_time = task.instructions / ipc
        start = max(core_free[core], prev_spawn + config.spawn_latency)
        if not task.parallel:
            start = max(start, commit_time)

        end = start + exec_time
        for older, o_start, o_end in window:
            if o_end > start and conflicts_with(task, older):
                squashes += 1
                start = o_end + config.squash_penalty
                end = start + exec_time
        end = max(end, commit_time + config.token_latency)
        commit_time = end
        core_free[core] = end
        prev_spawn = start
        window = [(t, s, e) for t, s, e in window if e > start]
        window.append((task, start, end))

    return TlsResult(
        scheme=config.name,
        cycles=commit_time,
        baseline_cycles=baseline_cycles,
        squashes=squashes,
        tasks=len(trace.tasks),
    )
