"""A Multiscalar-like ring-of-processing-units model (Sohi et al., 1995).

Eight simple processing units (2-issue limited OoO, ROB=32 in the original)
arranged in a ring.  Tasks are assigned round-robin in program order; a
task can start once its PU is free and its predecessor task has started
(register values are forwarded around the ring with a per-hop latency).
A task that reads memory an older in-flight task writes squashes and
re-executes once the producer commits; commits happen in task order, with
a ring-advance overhead per task.

Area/baseline/task-size characteristics follow table 3: ~8x the area of
one unit, a weak per-unit baseline, and 10-50 instruction tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .common import Task, TaskTrace, conflicts_with


@dataclass
class MultiscalarConfig:
    num_units: int = 8
    unit_ipc: float = 1.3          # 2-issue limited OoO
    forward_latency: int = 4       # ring register forwarding per task hop
    commit_overhead: int = 6       # ring head advance
    squash_penalty: int = 12       # restart a squashed task
    area_factor: float = 8.0       # vs one processing unit

    @property
    def name(self) -> str:
        return "MultiScalar (1995)"


@dataclass
class TlsResult:
    scheme: str
    cycles: float
    baseline_cycles: float
    squashes: int
    tasks: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.cycles if self.cycles else 0.0


def simulate_multiscalar(
    trace: TaskTrace, config: Optional[MultiscalarConfig] = None
) -> TlsResult:
    """Schedule the task trace onto the ring; returns cycles and speedup
    over single-unit sequential execution of the same trace."""
    config = config or MultiscalarConfig()
    ipc = config.unit_ipc

    baseline_cycles = trace.total_instructions / ipc

    unit_free = [0.0] * config.num_units
    prev_start = 0.0
    commit_time = 0.0  # in-order commit frontier
    squashes = 0
    window: List[tuple] = []  # (task, start, end) of in-flight older tasks

    for i, task in enumerate(trace.tasks):
        unit = i % config.num_units
        exec_time = task.instructions / ipc
        start = max(unit_free[unit], prev_start + config.forward_latency)
        if not task.parallel:
            # Serial tasks wait for everything older to commit.
            start = max(start, commit_time)

        # Memory conflicts with older, still-running tasks force a restart
        # after the producer finishes.
        end = start + exec_time
        for older, o_start, o_end in window:
            if o_end > start and conflicts_with(task, older):
                squashes += 1
                start = o_end + config.squash_penalty
                end = start + exec_time
        # In-order commit: a task retires after its predecessor.
        end = max(end, commit_time + config.commit_overhead)
        commit_time = end
        unit_free[unit] = end
        prev_start = start
        window = [(t, s, e) for t, s, e in window if e > start]
        window.append((task, start, end))

    return TlsResult(
        scheme=config.name,
        cycles=commit_time,
        baseline_cycles=baseline_cycles,
        squashes=squashes,
        tasks=len(trace.tasks),
    )
