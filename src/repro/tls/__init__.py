"""Classic TLS scheme models for the table-3 comparison."""

from .common import Task, TaskTrace, conflicts_with, extract_tasks
from .multiscalar import MultiscalarConfig, TlsResult, simulate_multiscalar
from .stampede import StampedeConfig, simulate_stampede

__all__ = [
    "Task",
    "TaskTrace",
    "conflicts_with",
    "extract_tasks",
    "MultiscalarConfig",
    "TlsResult",
    "simulate_multiscalar",
    "StampedeConfig",
    "simulate_stampede",
]
