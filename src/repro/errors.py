"""Exception hierarchy for the LoopFrog reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems define narrow
subclasses to make failures actionable (e.g. an :class:`AssemblerError`
carries the offending source line).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblerError(ReproError):
    """Raised when assembly text cannot be parsed or resolved.

    Attributes:
        line_no: 1-based line number of the offending line, if known.
        line: the raw source line, if known.
    """

    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        if line_no:
            message = f"line {line_no}: {message}: {line.strip()!r}"
        super().__init__(message)


class ExecutionError(ReproError):
    """Raised when the functional executor encounters an illegal state."""


class CompilerError(ReproError):
    """Raised for errors in the Frog compiler (lowering, analysis, codegen)."""


class ParseError(CompilerError):
    """Raised when Frog source text cannot be lexed or parsed."""

    def __init__(self, message: str, line_no: int = 0, col: int = 0):
        self.line_no = line_no
        self.col = col
        if line_no:
            message = f"{line_no}:{col}: {message}"
        super().__init__(message)


class ConfigError(ReproError):
    """Raised when a simulator configuration is inconsistent."""


class SimulationError(ReproError):
    """Raised when the timing model reaches an impossible state."""


class WorkloadError(ReproError):
    """Raised when a named workload or suite cannot be constructed."""


class SpecError(WorkloadError):
    """Raised when a workload spec (YAML or dict) is malformed."""


class FuzzError(ReproError):
    """Raised when a fuzzing session or corpus operation cannot proceed."""
